//! Per-site LP column blocks and their cache.
//!
//! The siting LP ([`crate::formulation`]) is block-structured: every site
//! contributes an identical *shape* of sizing/dispatch variables and
//! per-slot constraints, coupled only by a thin layer of network rows
//! (demand, green fraction, redundancy). A [`SiteBlock`] is one site's
//! compiled contribution — variable definitions, constraint rows over
//! *local* variable indices, and the site's unit costs — independent of
//! which other sites share the network.
//!
//! Blocks depend only on `(candidate, SizeClass)` for a fixed
//! [`PlacementInput`]/[`CostParams`], so the annealing search caches them in
//! a [`SiteBlockCache`]: a neighbour siting that adds, removes, or swaps one
//! site re-compiles at most one block instead of re-emitting every variable
//! and constraint. Assembly order follows the siting (which is kept sorted),
//! giving a stable variable ordering so simplex bases transfer between
//! neighbouring sitings (see `DESIGN.md`).

use crate::candidate::CandidateSite;
use crate::formulation::UnitCosts;
use crate::framework::{PlacementInput, SizeClass, StorageMode};
use greencloud_cost::params::CostParams;
use greencloud_lp::{Model, Sense, VarId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Months per year (energy flows are annual; costs are reported monthly).
pub(crate) const MONTHS: f64 = 12.0;

/// One variable definition inside a block (local to the block).
#[derive(Debug, Clone)]
struct BlockVar {
    name: String,
    lb: f64,
    ub: f64,
    obj: f64,
}

/// One constraint row inside a block, over local variable indices.
#[derive(Debug, Clone)]
struct BlockCon {
    name: String,
    terms: Vec<(usize, f64)>,
    sense: Sense,
    rhs: f64,
}

/// Local (block-relative) indices of the semantically named variables;
/// mirrors `formulation::SiteVars` before offsetting.
#[derive(Debug, Clone, Default)]
pub(crate) struct LocalVars {
    pub capacity: usize,
    pub solar: usize,
    pub wind: usize,
    pub batt: Option<usize>,
    pub credited: Option<usize>,
    pub comp: Vec<usize>,
    pub mig: Option<Vec<usize>>,
    pub green_used: Vec<usize>,
    pub brown: Vec<usize>,
    pub batt_charge: Option<Vec<usize>>,
    pub batt_discharge: Option<Vec<usize>>,
    pub batt_level: Option<Vec<usize>>,
    pub nm_push: Option<Vec<usize>>,
    pub nm_draw: Option<Vec<usize>>,
}

/// Global `VarId` handles for one site after assembly into a model (the
/// battery *level* series stays block-internal — nothing downstream reads
/// it).
#[derive(Debug, Clone)]
pub(crate) struct SiteVars {
    pub capacity: VarId,
    pub solar: VarId,
    pub wind: VarId,
    pub batt: Option<VarId>,
    pub credited: Option<VarId>,
    pub comp: Vec<VarId>,
    pub mig: Option<Vec<VarId>>,
    pub green_used: Vec<VarId>,
    pub brown: Vec<VarId>,
    pub batt_charge: Option<Vec<VarId>>,
    pub batt_discharge: Option<Vec<VarId>>,
    pub nm_push: Option<Vec<VarId>>,
    pub nm_draw: Option<Vec<VarId>>,
}

/// One site's compiled LP contribution for a fixed `(input, params)` pair.
#[derive(Debug)]
pub struct SiteBlock {
    vars: Vec<BlockVar>,
    cons: Vec<BlockCon>,
    locals: LocalVars,
    /// Fixed monthly objective offset (the site's connection cost).
    obj_offset: f64,
    /// The site's Table I unit costs.
    pub(crate) unit_costs: UnitCosts,
    /// Retail electricity price, $/MWh.
    pub(crate) price_mwh: f64,
    /// Slots in the site's representative profile.
    pub(crate) num_slots: usize,
}

impl SiteBlock {
    /// Compiles the block for `site` under `input`/`params`. `ci` is the
    /// candidate's index, baked into variable/constraint names so that the
    /// same block is identifiable regardless of its position in a siting.
    pub fn build(
        params: &CostParams,
        input: &PlacementInput,
        ci: usize,
        site: &CandidateSite,
        class: SizeClass,
    ) -> Self {
        let uc = UnitCosts::compute(params, site, class);
        let max_pue = site.max_pue();
        let p_mwh = site.econ.elec_usd_per_kwh * 1000.0;
        let prof = &site.profile;
        let num_slots = prof.len();
        let weights = &prof.weight_hours;
        let theta = input.migration_fraction;
        let block_len = prof.block_len;

        let mut b = SiteBlock {
            vars: Vec::with_capacity(3 + 8 * num_slots),
            cons: Vec::with_capacity(6 * num_slots + 3),
            locals: LocalVars::default(),
            obj_offset: uc.connection,
            unit_costs: uc,
            price_mwh: p_mwh,
            num_slots,
        };

        // --- sizing variables (same emission order as the original
        // monolithic builder, so models assemble identically) -------------
        let (cap_lb, cap_ub) = match class {
            SizeClass::Small => (0.0, 10.0 / max_pue),
            SizeClass::Large => (10.0 / max_pue, f64::INFINITY),
        };
        b.locals.capacity = b.var(format!("cap[c{ci}]"), cap_lb, cap_ub, uc.capacity_mw);
        let solar_ub = if input.tech.allows_solar() {
            f64::INFINITY
        } else {
            0.0
        };
        let wind_ub = if input.tech.allows_wind() {
            f64::INFINITY
        } else {
            0.0
        };
        b.locals.solar = b.var(format!("solar[c{ci}]"), 0.0, solar_ub, uc.solar_mw);
        b.locals.wind = b.var(format!("wind[c{ci}]"), 0.0, wind_ub, uc.wind_mw);
        b.locals.batt = match input.storage {
            StorageMode::Batteries => {
                Some(b.var(format!("batt[c{ci}]"), 0.0, f64::INFINITY, uc.batt_mwh))
            }
            _ => None,
        };

        // --- per-slot variables ------------------------------------------
        let brown_cap_mw = site.econ.near_plant_cap_kw / 1000.0 * params.brown_cap_fraction;
        for (t, &w) in weights.iter().enumerate() {
            let comp = b.var(format!("comp[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0);
            let g = b.var(format!("g[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0);
            // Brown power is priced per MWh of annual energy, reported
            // monthly: coefficient = price · w_t / 12.
            let brown = b.var(
                format!("brown[c{ci},{t}]"),
                0.0,
                brown_cap_mw,
                p_mwh * w / MONTHS,
            );
            b.locals.comp.push(comp);
            b.locals.green_used.push(g);
            b.locals.brown.push(brown);
        }
        if theta > 0.0 {
            b.locals.mig = Some(
                (0..num_slots)
                    .map(|t| b.var(format!("mig[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0))
                    .collect(),
            );
        }
        if matches!(input.storage, StorageMode::Batteries) {
            b.locals.batt_charge = Some(
                (0..num_slots)
                    .map(|t| b.var(format!("bc[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0))
                    .collect(),
            );
            b.locals.batt_discharge = Some(
                (0..num_slots)
                    .map(|t| b.var(format!("bd[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0))
                    .collect(),
            );
            b.locals.batt_level = Some(
                (0..num_slots)
                    .map(|t| b.var(format!("bl[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0))
                    .collect(),
            );
        }
        if matches!(input.storage, StorageMode::NetMetering) {
            b.locals.nm_push = Some(
                (0..num_slots)
                    .map(|t| b.var(format!("np[c{ci},{t}]"), 0.0, f64::INFINITY, 0.0))
                    .collect(),
            );
            // Draws are billed at retail like brown energy.
            b.locals.nm_draw = Some(
                (0..num_slots)
                    .map(|t| {
                        b.var(
                            format!("nd[c{ci},{t}]"),
                            0.0,
                            f64::INFINITY,
                            p_mwh * weights[t] / MONTHS,
                        )
                    })
                    .collect(),
            );
            // Credit revenue: maximized by the solver, bounded by the two
            // no-cash-out rows added below.
            b.locals.credited = Some(b.var(format!("credited[c{ci}]"), 0.0, f64::INFINITY, -1.0));
        }

        // --- per-slot constraints ----------------------------------------
        let v = b.locals.clone();
        for t in 0..num_slots {
            let pue = prof.pue[t];
            // Load balance (equality): g + bd + nd + brown − pue·(comp+mig) = 0.
            let mut terms = vec![(v.green_used[t], 1.0), (v.brown[t], 1.0), (v.comp[t], -pue)];
            if let Some(bd) = &v.batt_discharge {
                terms.push((bd[t], 1.0));
            }
            if let Some(nd) = &v.nm_draw {
                terms.push((nd[t], 1.0));
            }
            if let Some(m) = &v.mig {
                terms.push((m[t], -pue));
            }
            b.con(format!("bal[c{ci},{t}]"), terms, Sense::Eq, 0.0);

            // Production split: g + bc + np − α·solar − β·wind ≤ 0.
            let mut terms = vec![
                (v.green_used[t], 1.0),
                (v.solar, -prof.alpha[t]),
                (v.wind, -prof.beta[t]),
            ];
            if let Some(bc) = &v.batt_charge {
                terms.push((bc[t], 1.0));
            }
            if let Some(np) = &v.nm_push {
                terms.push((np[t], 1.0));
            }
            b.con(format!("prod[c{ci},{t}]"), terms, Sense::Le, 0.0);

            // Capacity link: comp + mig − capacity ≤ 0.
            let mut terms = vec![(v.comp[t], 1.0), (v.capacity, -1.0)];
            if let Some(m) = &v.mig {
                terms.push((m[t], 1.0));
            }
            b.con(format!("caplink[c{ci},{t}]"), terms, Sense::Le, 0.0);

            // Migration floor: θ·comp_prev − θ·comp_t − mig_t ≤ 0, cyclic per
            // dispatch block.
            if let Some(m) = &v.mig {
                let prev = cyclic_prev(t, block_len, num_slots);
                if prev != t {
                    b.con(
                        format!("migfloor[c{ci},{t}]"),
                        vec![(v.comp[prev], theta), (v.comp[t], -theta), (m[t], -1.0)],
                        Sense::Le,
                        0.0,
                    );
                }
            }

            // Battery dynamics (cyclic per block) and capacity.
            if let (Some(bc), Some(bd), Some(bl), Some(bcap)) =
                (&v.batt_charge, &v.batt_discharge, &v.batt_level, v.batt)
            {
                let prev = cyclic_prev(t, block_len, num_slots);
                let eff = params.batt_efficiency;
                b.con(
                    format!("battdyn[c{ci},{t}]"),
                    vec![(bl[t], 1.0), (bl[prev], -1.0), (bc[t], -eff), (bd[t], 1.0)],
                    Sense::Eq,
                    0.0,
                );
                b.con(
                    format!("battcap[c{ci},{t}]"),
                    vec![(bl[t], 1.0), (bcap, -1.0)],
                    Sense::Le,
                    0.0,
                );
            }
        }

        // Net-metering annual true-up: Σ w·nd − Σ w·np ≤ 0.
        if let (Some(np), Some(nd)) = (&v.nm_push, &v.nm_draw) {
            let mut terms = Vec::with_capacity(2 * num_slots);
            for t in 0..num_slots {
                terms.push((nd[t], weights[t]));
                terms.push((np[t], -weights[t]));
            }
            b.con(format!("bank[c{ci}]"), terms, Sense::Le, 0.0);

            // No cash-out: credited ≤ credit·Σ w·np·price/12 and
            // credited ≤ payable = Σ w·(brown+nd)·price/12.
            let cr = v.credited.expect("net metering implies credit var");
            let mut terms = vec![(cr, 1.0)];
            for t in 0..num_slots {
                terms.push((np[t], -input.credit_net_meter * p_mwh * weights[t] / MONTHS));
            }
            b.con(format!("credit_push[c{ci}]"), terms, Sense::Le, 0.0);
            let mut terms = vec![(cr, 1.0)];
            for t in 0..num_slots {
                terms.push((v.brown[t], -p_mwh * weights[t] / MONTHS));
                terms.push((nd[t], -p_mwh * weights[t] / MONTHS));
            }
            b.con(format!("credit_pay[c{ci}]"), terms, Sense::Le, 0.0);
        }

        b
    }

    fn var(&mut self, name: String, lb: f64, ub: f64, obj: f64) -> usize {
        let idx = self.vars.len();
        self.vars.push(BlockVar { name, lb, ub, obj });
        idx
    }

    fn con(&mut self, name: String, terms: Vec<(usize, f64)>, sense: Sense, rhs: f64) {
        self.cons.push(BlockCon {
            name,
            terms,
            sense,
            rhs,
        });
    }

    /// Number of variables this block contributes.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints this block contributes.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Appends this block's variables to `model`, returning the site's
    /// global handles. Constraints are appended separately (all blocks'
    /// variables first, then all constraints) by
    /// [`SiteBlock::append_cons_to`].
    pub(crate) fn append_vars_to(&self, model: &mut Model) -> SiteVars {
        let base = model.num_vars();
        for v in &self.vars {
            model.add_var(v.name.clone(), v.lb, v.ub, v.obj);
        }
        model.add_obj_offset(self.obj_offset);
        let at = |local: usize| VarId::from_index(base + local);
        let all = |locals: &Vec<usize>| -> Vec<VarId> { locals.iter().map(|&l| at(l)).collect() };
        let l = &self.locals;
        SiteVars {
            capacity: at(l.capacity),
            solar: at(l.solar),
            wind: at(l.wind),
            batt: l.batt.map(at),
            credited: l.credited.map(at),
            comp: all(&l.comp),
            mig: l.mig.as_ref().map(all),
            green_used: all(&l.green_used),
            brown: all(&l.brown),
            batt_charge: l.batt_charge.as_ref().map(all),
            batt_discharge: l.batt_discharge.as_ref().map(all),
            nm_push: l.nm_push.as_ref().map(all),
            nm_draw: l.nm_draw.as_ref().map(all),
        }
    }

    /// Appends this block's constraints to `model`, remapping local variable
    /// indices by `var_base` (the model index of this block's first var).
    pub(crate) fn append_cons_to(&self, model: &mut Model, var_base: usize) {
        for c in &self.cons {
            model.add_con(
                c.name.clone(),
                c.terms
                    .iter()
                    .map(|&(l, coeff)| (VarId::from_index(var_base + l), coeff)),
                c.sense,
                c.rhs,
            );
        }
    }
}

/// Previous slot in the same cyclic dispatch block.
fn cyclic_prev(t: usize, block_len: usize, num_slots: usize) -> usize {
    if t.is_multiple_of(block_len) {
        ((t / block_len + 1) * block_len).min(num_slots) - 1
    } else {
        t - 1
    }
}

/// Concurrent cache of compiled [`SiteBlock`]s, keyed by
/// `(candidate index, SizeClass)`.
///
/// A cache instance is only valid for one `(CostParams, PlacementInput,
/// candidate set)` combination — the annealing search and the exact
/// enumerator each create their own per run. Sharded so parallel SA chains
/// rarely contend.
#[derive(Debug)]
pub struct SiteBlockCache {
    shards: Vec<BlockShard>,
    /// The `(params, input)` pair this cache was first used with; blocks
    /// depend on both, so reuse under a different pair is a logic error.
    fingerprint: Mutex<Option<(CostParams, PlacementInput)>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// One lock-protected shard of the block cache.
type BlockShard = Mutex<HashMap<(usize, SizeClass), Arc<SiteBlock>>>;

impl Default for SiteBlockCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SiteBlockCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        Self {
            shards: (0..8).map(|_| Mutex::new(HashMap::new())).collect(),
            fingerprint: Mutex::new(None),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, ci: usize) -> &BlockShard {
        &self.shards[ci % self.shards.len()]
    }

    /// Returns the cached block for `(ci, class)`, compiling it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the cache is reused with a different `(params, input)`
    /// pair than it was first used with — cached blocks would silently
    /// describe the wrong problem otherwise.
    pub fn get_or_build(
        &self,
        params: &CostParams,
        input: &PlacementInput,
        ci: usize,
        site: &CandidateSite,
        class: SizeClass,
    ) -> Arc<SiteBlock> {
        {
            let mut fp = self.fingerprint.lock();
            match fp.as_ref() {
                None => *fp = Some((params.clone(), input.clone())),
                Some((p, i)) => assert!(
                    p == params && i == input,
                    "SiteBlockCache reused with different CostParams/PlacementInput; \
                     create one cache per (params, input) pair"
                ),
            }
        }
        let shard = self.shard(ci);
        if let Some(hit) = shard.lock().get(&(ci, class)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compile outside the lock; losing a race just wastes one build.
        let block = Arc::new(SiteBlock::build(params, input, ci, site, class));
        let mut guard = shard.lock();
        let entry = guard
            .entry((ci, class))
            .or_insert_with(|| Arc::clone(&block));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(entry)
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (block compilations) since construction.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::{build_network_lp, build_network_lp_cached};
    use crate::framework::{PlacementInput, TechMix};
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    fn candidates() -> Vec<CandidateSite> {
        let w = WorldCatalog::anchors_only(4);
        CandidateSite::build_all(&w, &ProfileConfig::coarse())
    }

    fn nm_input() -> PlacementInput {
        PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        }
    }

    #[test]
    fn cached_and_uncached_builders_agree() {
        let cands = candidates();
        let params = CostParams::default();
        for input in [
            nm_input(),
            PlacementInput {
                storage: StorageMode::Batteries,
                ..nm_input()
            },
            PlacementInput {
                storage: StorageMode::None,
                migration_fraction: 0.0,
                ..nm_input()
            },
        ] {
            let siting = vec![(2usize, SizeClass::Large), (5usize, SizeClass::Small)];
            let sites: Vec<_> = siting.iter().map(|&(ci, c)| (&cands[ci], c)).collect();
            let direct = build_network_lp(&params, &input, &sites);
            let cache = SiteBlockCache::new();
            let cached = build_network_lp_cached(&params, &input, &cands, &siting, &cache);
            assert_eq!(direct.num_vars(), cached.num_vars());
            assert_eq!(direct.num_cons(), cached.num_cons());
            let a = direct.solve();
            let b = cached.solve();
            match (a, b) {
                (Ok(da), Ok(db)) => {
                    let scale = 1.0 + da.monthly_cost.abs();
                    assert!(
                        (da.monthly_cost - db.monthly_cost).abs() < 1e-7 * scale,
                        "cached {} vs direct {}",
                        db.monthly_cost,
                        da.monthly_cost
                    );
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                (a, b) => panic!("builders disagree: direct {a:?} cached {b:?}"),
            }
        }
    }

    #[test]
    fn block_cache_reuses_compiled_blocks() {
        let cands = candidates();
        let params = CostParams::default();
        let input = nm_input();
        let cache = SiteBlockCache::new();
        let b1 = cache.get_or_build(&params, &input, 2, &cands[2], SizeClass::Large);
        let b2 = cache.get_or_build(&params, &input, 2, &cands[2], SizeClass::Large);
        assert!(Arc::ptr_eq(&b1, &b2), "same key must share one block");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A different class is a different block.
        let b3 = cache.get_or_build(&params, &input, 2, &cands[2], SizeClass::Small);
        assert!(!Arc::ptr_eq(&b1, &b3));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn neighbour_sitings_transfer_bases() {
        // Two sitings differing in one site (same length, same storage
        // mode): the optimal basis of the first must warm-start the second
        // without changing its optimum.
        let cands = candidates();
        let params = CostParams::default();
        let input = nm_input();
        let cache = SiteBlockCache::new();
        let a = vec![(2usize, SizeClass::Large), (5usize, SizeClass::Large)];
        let b = vec![(2usize, SizeClass::Large), (7usize, SizeClass::Large)];
        let lp_a = build_network_lp_cached(&params, &input, &cands, &a, &cache);
        let (_, basis_a) = lp_a
            .solve_warm(Default::default(), None)
            .expect("siting A solves");
        let lp_b = build_network_lp_cached(&params, &input, &cands, &b, &cache);
        let (cold_b, _) = lp_b.solve_warm(Default::default(), None).expect("cold B");
        let (warm_b, _) = lp_b
            .solve_warm(Default::default(), basis_a.as_ref())
            .expect("warm B");
        let scale = 1.0 + cold_b.monthly_cost.abs();
        assert!(
            (warm_b.monthly_cost - cold_b.monthly_cost).abs() < 1e-6 * scale,
            "warm {} vs cold {}",
            warm_b.monthly_cost,
            cold_b.monthly_cost
        );
        if warm_b.warm_started {
            assert!(warm_b.iterations <= cold_b.iterations);
        }
        // Shared site block (candidate 2, Large) was compiled once.
        assert!(cache.hits() >= 1, "hits {}", cache.hits());
    }
}
