//! The heuristic's location pre-filter (paper §II-C, step 1).
//!
//! Evaluating a candidate siting requires an LP solve; doing that for all
//! 1373 locations is what makes the raw MILP intractable. The paper first
//! scores every location with cheap closed-form cost estimates for a few
//! common configurations (brown-only, 50% solar, 50% wind) and keeps only
//! the promising ones. We reproduce that: the estimate prices one MW of
//! compute capacity plus the green plant needed to hit the requested green
//! fraction on *annual averages* (ignoring storage dynamics), which is
//! exactly the fidelity the filter needs.

use crate::candidate::CandidateSite;
use crate::formulation::UnitCosts;
use crate::framework::{PlacementInput, SizeClass, TechMix};
use greencloud_cost::params::CostParams;

/// Months per year.
const MONTHS: f64 = 12.0;

/// Closed-form estimate of the monthly cost per MW of compute capacity at a
/// site, for a given technology and green fraction, assuming a datacenter of
/// `assumed_dc_mw` for amortizing the fixed connection cost.
pub fn estimate_cost_per_mw(
    params: &CostParams,
    site: &CandidateSite,
    tech: TechMix,
    green_fraction: f64,
    assumed_dc_mw: f64,
) -> f64 {
    let uc = UnitCosts::compute(params, site, SizeClass::Large);
    let mean_pue = site.annual.mean_pue;
    let price_mwh = site.econ.elec_usd_per_kwh * 1000.0;
    // Annual average electrical demand of 1 MW of compute.
    let demand_avg_mw = mean_pue;
    let energy_month_full = demand_avg_mw * 8760.0 / MONTHS * price_mwh;

    let mut cost = uc.capacity_mw + uc.connection / assumed_dc_mw;
    match tech {
        TechMix::BrownOnly => cost += energy_month_full,
        TechMix::WindOnly => {
            let cf = site.annual.wind.max(1e-4);
            let plant_mw = green_fraction * demand_avg_mw / cf;
            cost += plant_mw * uc.wind_mw + energy_month_full * (1.0 - green_fraction);
        }
        TechMix::SolarOnly => {
            let cf = site.annual.solar.max(1e-4);
            let plant_mw = green_fraction * demand_avg_mw / cf;
            cost += plant_mw * uc.solar_mw + energy_month_full * (1.0 - green_fraction);
        }
        TechMix::Both => {
            let wind = estimate_cost_per_mw(
                params,
                site,
                TechMix::WindOnly,
                green_fraction,
                assumed_dc_mw,
            );
            let solar = estimate_cost_per_mw(
                params,
                site,
                TechMix::SolarOnly,
                green_fraction,
                assumed_dc_mw,
            );
            return wind.min(solar);
        }
    }
    cost
}

/// Scores every candidate and returns the indices of the `keep` cheapest,
/// cheapest first.
///
/// The score of a location is its best estimate across the configurations
/// relevant to `input` (the paper uses "some common configurations").
pub fn filter_candidates(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    keep: usize,
) -> Vec<usize> {
    let assumed = (input.total_capacity_mw / 2.0).max(1.0);
    let g = input.min_green_fraction;
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let score = match input.tech {
                TechMix::BrownOnly => {
                    estimate_cost_per_mw(params, c, TechMix::BrownOnly, 0.0, assumed)
                }
                tech => estimate_cost_per_mw(params, c, tech, g.max(0.25), assumed),
            };
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
    scored.truncate(keep.max(1));
    scored.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::StorageMode;
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    fn candidates() -> Vec<CandidateSite> {
        let w = WorldCatalog::synthetic(40, 21);
        CandidateSite::build_all(&w, &ProfileConfig::coarse())
    }

    #[test]
    fn wind_filter_prefers_windy_sites() {
        let cands = candidates();
        let input = PlacementInput {
            tech: TechMix::WindOnly,
            min_green_fraction: 0.5,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let kept = filter_candidates(&CostParams::default(), &input, &cands, 10);
        assert_eq!(kept.len(), 10);
        // The surviving set must be meaningfully windier than the world
        // average (Mount Washington itself may lose to synthetic windy
        // sites with cheaper land — its Table II land price is $947/m²).
        let avg_all: f64 = cands.iter().map(|c| c.annual.wind).sum::<f64>() / cands.len() as f64;
        let avg_kept: f64 =
            kept.iter().map(|&i| cands[i].annual.wind).sum::<f64>() / kept.len() as f64;
        assert!(
            avg_kept > avg_all * 1.3,
            "kept wind CF {avg_kept:.3} vs world {avg_all:.3}"
        );
    }

    #[test]
    fn filter_orders_by_score() {
        let cands = candidates();
        let input = PlacementInput {
            tech: TechMix::BrownOnly,
            min_green_fraction: 0.0,
            ..PlacementInput::default()
        };
        let params = CostParams::default();
        let kept = filter_candidates(&params, &input, &cands, 15);
        let scores: Vec<f64> = kept
            .iter()
            .map(|&i| estimate_cost_per_mw(&params, &cands[i], TechMix::BrownOnly, 0.0, 25.0))
            .collect();
        for w in scores.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "not sorted: {scores:?}");
        }
    }

    #[test]
    fn keep_is_clamped_to_at_least_one() {
        let cands = candidates();
        let input = PlacementInput::default();
        let kept = filter_candidates(&CostParams::default(), &input, &cands, 0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn both_takes_cheaper_technology() {
        let cands = candidates();
        let params = CostParams::default();
        for c in cands.iter().take(10) {
            let both = estimate_cost_per_mw(&params, c, TechMix::Both, 0.5, 25.0);
            let wind = estimate_cost_per_mw(&params, c, TechMix::WindOnly, 0.5, 25.0);
            let solar = estimate_cost_per_mw(&params, c, TechMix::SolarOnly, 0.5, 25.0);
            assert!((both - wind.min(solar)).abs() < 1e-9);
        }
    }
}
