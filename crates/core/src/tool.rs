//! The end-to-end placement tool (paper §III).
//!
//! Wraps the full pipeline: build candidates from a world catalog
//! (parallelized — each candidate synthesizes a TMY year), pre-filter,
//! anneal, and assemble the reported solution. Also exposes the
//! single-location provisioning solve used by the paper's Fig. 6 cost-CDF
//! study.

use crate::anneal::{anneal, AnnealOptions};
use crate::candidate::CandidateSite;
use crate::filter::filter_candidates;
use crate::formulation::build_network_lp;
use crate::framework::{PlacementInput, SizeClass};
use crate::solution::PlacementSolution;
use greencloud_climate::catalog::{LocationId, WorldCatalog};
use greencloud_climate::profiles::ProfileConfig;
use greencloud_cost::params::CostParams;
use greencloud_lp::SolveError;
use std::sync::Arc;

/// The machine-derived default thread count for candidate building, sweep
/// fan-out, and concurrent experiment execution:
/// [`std::thread::available_parallelism`], clamped to `[1, 16]` (the
/// workloads stop scaling well before that, and unclamped values would
/// oversubscribe CI runners).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Configuration of the placement tool.
#[derive(Debug, Clone)]
pub struct ToolOptions {
    /// Representative-day profile shared by all candidates.
    pub profile: ProfileConfig,
    /// How many locations survive the pre-filter.
    pub filter_keep: usize,
    /// Simulated-annealing search options.
    pub anneal: AnnealOptions,
    /// Threads used to build candidates (defaults to [`default_threads`]).
    pub build_threads: usize,
}

impl Default for ToolOptions {
    fn default() -> Self {
        Self {
            profile: ProfileConfig::default(),
            filter_keep: 20,
            anneal: AnnealOptions::default(),
            build_threads: default_threads(),
        }
    }
}

/// The siting and provisioning tool.
#[derive(Debug)]
pub struct PlacementTool {
    params: CostParams,
    candidates: Arc<Vec<CandidateSite>>,
    options: ToolOptions,
}

impl PlacementTool {
    /// Builds the tool for a world catalog (synthesizes every location's
    /// TMY; parallelized across `build_threads`).
    pub fn new(catalog: &WorldCatalog, params: CostParams, options: ToolOptions) -> Self {
        let candidates = Arc::new(CandidateSite::build_all_threaded(
            catalog,
            &options.profile,
            options.build_threads,
        ));
        Self::with_candidates(params, candidates, options)
    }

    /// Builds the tool over pre-built candidates (which must share
    /// `options.profile`'s slot clock). The `greencloud-api` engine uses
    /// this to reuse one candidate set across many experiments instead of
    /// re-synthesizing every location's TMY per run.
    pub fn with_candidates(
        params: CostParams,
        candidates: Arc<Vec<CandidateSite>>,
        options: ToolOptions,
    ) -> Self {
        PlacementTool {
            params,
            candidates,
            options,
        }
    }

    /// All candidates (catalog order).
    pub fn candidates(&self) -> &[CandidateSite] {
        &self.candidates
    }

    /// The cost parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Sites and provisions a datacenter network for `input`.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when no feasible siting exists within the
    /// filtered candidate set, plus any solver-level error.
    pub fn solve(&self, input: &PlacementInput) -> Result<PlacementSolution, SolveError> {
        let kept = filter_candidates(
            &self.params,
            input,
            &self.candidates,
            self.options.filter_keep,
        );
        let filtered: Vec<CandidateSite> =
            kept.iter().map(|&i| self.candidates[i].clone()).collect();
        let result = anneal(&self.params, input, &filtered, &self.options.anneal)?;
        // Map filtered indices back to catalog candidates for reporting.
        let siting: Vec<(usize, SizeClass)> = result
            .siting
            .iter()
            .map(|&(fi, class)| (kept[fi], class))
            .collect();
        Ok(PlacementSolution::from_dispatch(
            &self.params,
            &self.candidates,
            &siting,
            &result.dispatch,
            result.evaluations,
        )
        .with_search_stats(result.stats))
    }

    /// Provisions a single datacenter of `capacity_mw` at one location
    /// (no availability constraint) — the paper's Fig. 6 study.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the location cannot host the
    /// datacenter under `input` (e.g. insufficient nearby brown capacity).
    pub fn solve_single(
        &self,
        location: LocationId,
        capacity_mw: f64,
        input: &PlacementInput,
    ) -> Result<PlacementSolution, SolveError> {
        let idx = self
            .candidates
            .iter()
            .position(|c| c.id == location)
            .ok_or_else(|| SolveError::InvalidModel("unknown location".into()))?;
        let class = if capacity_mw * self.candidates[idx].max_pue() > 10.0 {
            SizeClass::Large
        } else {
            SizeClass::Small
        };
        let single = PlacementInput {
            total_capacity_mw: capacity_mw,
            min_availability: 0.0,
            ..input.clone()
        };
        let sites = vec![(&self.candidates[idx], class)];
        let lp = build_network_lp(&self.params, &single, &sites);
        let dispatch = lp.solve()?;
        Ok(PlacementSolution::from_dispatch(
            &self.params,
            &self.candidates,
            &[(idx, class)],
            &dispatch,
            1,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{StorageMode, TechMix};

    fn quick_tool(n: usize, seed: u64) -> PlacementTool {
        let w = WorldCatalog::synthetic(n, seed);
        PlacementTool::new(
            &w,
            CostParams::default(),
            ToolOptions {
                profile: ProfileConfig::coarse(),
                filter_keep: 8,
                anneal: AnnealOptions {
                    iterations: 25,
                    chains: 2,
                    seed: 5,
                    ..AnnealOptions::default()
                },
                build_threads: 4,
            },
        )
    }

    #[test]
    fn end_to_end_green_network() {
        let tool = quick_tool(30, 17);
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let sol = tool.solve(&input).expect("solvable");
        assert!(sol.datacenters.len() >= 2);
        assert!(sol.green_fraction >= 0.5 - 1e-6);
        assert!(sol.total_capacity_mw >= 20.0 - 1e-6);
        assert!(sol.monthly_cost > 1e6);
    }

    #[test]
    fn single_location_fig6_style() {
        let tool = quick_tool(12, 17);
        let id = tool.candidates()[1].id;
        let brown = PlacementInput {
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let sol = tool.solve_single(id, 25.0, &brown).expect("solvable");
        assert_eq!(sol.datacenters.len(), 1);
        assert!((sol.datacenters[0].capacity_mw - 25.0).abs() < 1e-4);
        // Paper's Fig. 6 brown band: roughly $8–13M/month.
        assert!(
            sol.monthly_cost > 6e6 && sol.monthly_cost < 16e6,
            "cost {}",
            sol.monthly_cost
        );
    }

    #[test]
    fn unknown_location_is_reported() {
        let tool = quick_tool(12, 17);
        let err = tool
            .solve_single(LocationId(9999), 25.0, &PlacementInput::default())
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidModel(_)));
    }
}
