//! Compiles the paper's Fig. 1 optimization into an LP for a fixed siting.
//!
//! The heuristic solver fixes which locations host a datacenter (`at(d)`)
//! and each datacenter's construction size class; what remains — sizing the
//! datacenters, plants, and batteries, and dispatching energy over the
//! representative-day slots — is the linear program built here.
//!
//! Per site *d* and slot *t* (slot weight `w` hours/year, Δ = 1 h):
//!
//! ```text
//! balance:    g + bd + nd + brown = (comp + mig)·PUE(d,t)
//! production: g + bc + np ≤ α(d,t)·solar + β(d,t)·wind
//! battery:    blevel_t = blevel_{t−1} + eff·bc − bd   (cyclic per day)
//!             blevel_t ≤ batt_cap
//! net meter:  Σ w·nd ≤ Σ w·np                         (annual true-up)
//! credit:     credited ≤ credit·Σ w·np·price,  credited ≤ payable
//! migration:  mig_t ≥ θ·(comp_{t−1} − comp_t)         (cyclic per day)
//! capacity:   comp + mig ≤ capacity
//! demand:     Σ_d comp ≥ totalCapacity                 (every slot)
//! green:      Σ w·(g + bd + nd) ≥ minGreen·Σ w·PUE·(comp + mig)
//! brown cap:  brown ≤ nearPlantCap·F                   (variable bound)
//! redundancy: capacity_d ≥ (Σ capacity)/n              (n = #sites ≥ 2)
//! ```
//!
//! relative to the paper's literal Fig. 1 this is the *strict* green
//! accounting (production splits into used + stored + spilled; spilled
//! energy earns no green credit) and disallows net-metering cash-out —
//! both documented in `DESIGN.md`.

use crate::candidate::CandidateSite;
use crate::framework::{PlacementInput, SizeClass};
use crate::siteblock::{SiteBlock, SiteBlockCache, SiteVars, MONTHS};
use greencloud_cost::finance::{land_monthly_cost, monthly_cost};
use greencloud_cost::params::CostParams;
use greencloud_lp::{Basis, Model, Sense, SimplexOptions, Solution, SolveError, VarId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Monthly unit costs ($/month per MW or per MWh) for one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitCosts {
    /// Per MW of compute capacity: building + IT + land + bandwidth.
    pub capacity_mw: f64,
    /// Per MW of installed solar: plant + land.
    pub solar_mw: f64,
    /// Per MW of installed wind: plant + land.
    pub wind_mw: f64,
    /// Per MWh of battery bank.
    pub batt_mwh: f64,
    /// Fixed monthly cost of connecting the site (`CAP_ind`).
    pub connection: f64,
}

impl UnitCosts {
    /// Computes the site's unit costs under the Table I model.
    pub fn compute(params: &CostParams, site: &CandidateSite, class: SizeClass) -> Self {
        let rate = params.interest_rate;
        let dc_y = params.dc_lifetime_years;
        let max_pue = site.max_pue();
        let price_w = match class {
            SizeClass::Small => params.price_build_dc_small_per_w,
            SizeClass::Large => params.price_build_dc_large_per_w,
        };
        // Per MW of compute capacity (1 MW = 1000 kW = 1e6 W of IT load).
        let building = monthly_cost(max_pue * 1e6 * price_w, rate, dc_y, dc_y);
        let servers = params.num_servers(1000.0);
        let switches = servers / params.servers_per_switch;
        let it = monthly_cost(
            servers * params.price_server + switches * params.price_switch,
            rate,
            params.it_lifetime_years,
            params.it_lifetime_years,
        );
        let land_dc = land_monthly_cost(
            1000.0 * params.area_dc_m2_per_kw * site.econ.land_usd_per_m2,
            rate,
            dc_y,
        );
        let bandwidth = servers * params.price_bw_per_server_month;

        let solar = monthly_cost(
            1e6 * params.price_build_solar_per_w,
            rate,
            dc_y,
            params.plant_amortization_years,
        ) + land_monthly_cost(
            1000.0 * params.area_solar_m2_per_kw * site.econ.land_usd_per_m2,
            rate,
            dc_y,
        );
        let wind = monthly_cost(
            1e6 * params.price_build_wind_per_w,
            rate,
            dc_y,
            params.plant_amortization_years,
        ) + land_monthly_cost(
            1000.0 * params.area_wind_m2_per_kw * site.econ.land_usd_per_m2,
            rate,
            dc_y,
        );
        let batt = monthly_cost(
            1000.0 * params.price_batt_per_kwh,
            rate,
            params.batt_lifetime_years,
            params.batt_lifetime_years,
        );
        let connection = monthly_cost(
            site.econ.dist_power_km * params.cost_line_pow_per_km
                + site.econ.dist_network_km * params.cost_line_net_per_km,
            rate,
            dc_y,
            dc_y,
        );
        UnitCosts {
            capacity_mw: building + it + land_dc + bandwidth,
            solar_mw: solar,
            wind_mw: wind,
            batt_mwh: batt,
            connection,
        }
    }
}

/// The compiled LP for a fixed siting, ready to solve.
#[derive(Debug)]
pub struct NetworkLp {
    model: Model,
    vars: Vec<SiteVars>,
    unit_costs: Vec<UnitCosts>,
    num_slots: usize,
    input: PlacementInput,
    price_mwh: Vec<f64>,
    weights: Vec<f64>,
}

/// Per-site sizing and dispatch extracted from the LP optimum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteDispatch {
    /// Compute capacity, MW.
    pub capacity_mw: f64,
    /// Installed solar, MW.
    pub solar_mw: f64,
    /// Installed wind, MW.
    pub wind_mw: f64,
    /// Battery bank, MWh.
    pub batt_mwh: f64,
    /// Compute power hosted per slot, MW.
    pub comp_mw: Vec<f64>,
    /// Migration power overhead per slot, MW.
    pub mig_mw: Vec<f64>,
    /// Green power used directly per slot, MW.
    pub green_used_mw: Vec<f64>,
    /// Brown power drawn per slot, MW.
    pub brown_mw: Vec<f64>,
    /// Net-metering pushes per slot, MW (empty unless net metering).
    pub nm_push_mw: Vec<f64>,
    /// Net-metering draws per slot, MW (empty unless net metering).
    pub nm_draw_mw: Vec<f64>,
    /// Battery charge per slot, MW (empty unless batteries).
    pub batt_charge_mw: Vec<f64>,
    /// Battery discharge per slot, MW (empty unless batteries).
    pub batt_discharge_mw: Vec<f64>,
    /// Net monthly energy cost after credits, $.
    pub energy_cost_month: f64,
    /// Annual green energy counted toward the requirement, MWh.
    pub green_mwh_yr: f64,
    /// Annual energy demand (IT + migration, PUE-scaled), MWh.
    pub demand_mwh_yr: f64,
    /// Annual brown energy purchased, MWh.
    pub brown_mwh_yr: f64,
}

/// The LP optimum for a fixed siting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkDispatch {
    /// Total monthly cost, $ (the paper's `TotalCost` for this siting).
    pub monthly_cost: f64,
    /// Per-site results, in the order the sites were given.
    pub sites: Vec<SiteDispatch>,
    /// Achieved green-energy fraction over the year.
    pub green_fraction: f64,
    /// Total provisioned compute capacity, MW (Figs. 11/12).
    pub total_capacity_mw: f64,
    /// Simplex iterations spent.
    pub iterations: usize,
    /// `true` when the solve was warm-started from a supplied basis.
    pub warm_started: bool,
    /// Full solver counters for this solve (refactorizations, FTRAN/BTRAN
    /// counts, pricing time) — see [`greencloud_lp::SolveStats`].
    pub lp_stats: greencloud_lp::SolveStats,
}

/// Builds the LP for `sites` under `input`, compiling every site block from
/// scratch. Hot paths that evaluate many sitings over one candidate set
/// should use [`build_network_lp_cached`] instead, which reuses compiled
/// blocks across sitings.
///
/// # Panics
///
/// Panics if `sites` is empty, the input fails validation, or the sites do
/// not share one slot clock.
pub fn build_network_lp(
    params: &CostParams,
    input: &PlacementInput,
    sites: &[(&CandidateSite, SizeClass)],
) -> NetworkLp {
    let entries: Vec<(&CandidateSite, Arc<SiteBlock>)> = sites
        .iter()
        .enumerate()
        .map(|(si, (site, class))| {
            (
                *site,
                Arc::new(SiteBlock::build(params, input, si, site, *class)),
            )
        })
        .collect();
    assemble(input, &entries)
}

/// Builds the LP for the siting `siting` over `candidates`, reusing
/// compiled per-site blocks from `cache`. A neighbour siting that differs
/// in one site compiles exactly one new block; everything else is an
/// `Arc` clone. The assembled model is identical to what
/// [`build_network_lp`] produces for the same sites (same variable
/// ordering, bounds, coefficients), so simplex bases transfer between the
/// two paths and across neighbouring sitings of the same shape.
///
/// # Panics
///
/// Panics if `siting` is empty, the input fails validation, or the sites
/// do not share one slot clock.
pub fn build_network_lp_cached(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    siting: &[(usize, SizeClass)],
    cache: &SiteBlockCache,
) -> NetworkLp {
    let entries: Vec<(&CandidateSite, Arc<SiteBlock>)> = siting
        .iter()
        .map(|&(ci, class)| {
            let site = &candidates[ci];
            (site, cache.get_or_build(params, input, ci, site, class))
        })
        .collect();
    assemble(input, &entries)
}

/// Assembles site blocks plus the network coupling rows into a solvable LP.
fn assemble(input: &PlacementInput, sites: &[(&CandidateSite, Arc<SiteBlock>)]) -> NetworkLp {
    assert!(!sites.is_empty(), "need at least one site");
    // gclint: allow(panic-path) — documented panicking precondition; inputs are validated at the Engine/PlacementTool boundary
    input.validate().expect("invalid placement input");
    // gclint: allow(index-literal) — guarded by the non-empty assert directly above
    let lead_profile = &sites[0].0.profile;
    let num_slots = lead_profile.len();
    for (s, b) in sites {
        assert_eq!(s.profile.len(), num_slots, "sites must share a slot clock");
        assert_eq!(
            b.num_slots, num_slots,
            "block compiled on a different clock"
        );
    }
    let n = sites.len();
    let weights = lead_profile.weight_hours.clone();

    let mut model = Model::new();
    let mut vars = Vec::with_capacity(n);
    let mut var_bases = Vec::with_capacity(n);
    let mut unit_costs = Vec::with_capacity(n);
    let mut price_mwh = Vec::with_capacity(n);

    // All blocks' variables first (stable ordering: siting order), then all
    // blocks' constraints, then the network rows — matching the layout the
    // original monolithic builder produced.
    for (_, block) in sites {
        var_bases.push(model.num_vars());
        vars.push(block.append_vars_to(&mut model));
        unit_costs.push(block.unit_costs);
        price_mwh.push(block.price_mwh);
    }
    for ((_, block), &base) in sites.iter().zip(&var_bases) {
        block.append_cons_to(&mut model, base);
    }

    // --- network-level constraints ----------------------------------------
    // Demand: Σ_d comp ≥ totalCapacity every slot.
    for t in 0..num_slots {
        model.add_con(
            format!("demand[{t}]"),
            vars.iter().map(|v| (v.comp[t], 1.0)),
            Sense::Ge,
            input.total_capacity_mw,
        );
    }

    // Green fraction: Σ w·(g+bd+nd) − minGreen·Σ w·pue·(comp+mig) ≥ 0.
    if input.min_green_fraction > 0.0 {
        let mut terms = Vec::new();
        for (si, (site, _)) in sites.iter().enumerate() {
            let v = &vars[si];
            for t in 0..num_slots {
                let w = weights[t];
                terms.push((v.green_used[t], w));
                if let Some(bd) = &v.batt_discharge {
                    terms.push((bd[t], w));
                }
                if let Some(nd) = &v.nm_draw {
                    terms.push((nd[t], w));
                }
                let pue = site.profile.pue[t];
                terms.push((v.comp[t], -input.min_green_fraction * pue * w));
                if let Some(m) = &v.mig {
                    terms.push((m[t], -input.min_green_fraction * pue * w));
                }
            }
        }
        model.add_con("green_fraction", terms, Sense::Ge, 0.0);
    }

    // Survivability: capacity_d ≥ (Σ capacity)/n for every site.
    if n >= 2 {
        for si in 0..n {
            let terms = (0..n).map(|sj| {
                let coeff = if sj == si {
                    1.0 - 1.0 / n as f64
                } else {
                    -1.0 / n as f64
                };
                (vars[sj].capacity, coeff)
            });
            model.add_con(format!("redundancy[{si}]"), terms, Sense::Ge, 0.0);
        }
    }

    NetworkLp {
        model,
        vars,
        unit_costs,
        num_slots,
        input: input.clone(),
        price_mwh,
        weights,
    }
}

impl NetworkLp {
    /// Number of variables in the compiled model.
    pub fn num_vars(&self) -> usize {
        self.model.num_vars()
    }

    /// Number of constraints in the compiled model.
    pub fn num_cons(&self) -> usize {
        self.model.num_cons()
    }

    /// Read-only access to the underlying model (for diagnostics/tests).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Solves the LP with default simplex options.
    ///
    /// # Errors
    ///
    /// Propagates the solver status; [`SolveError::Infeasible`] means this
    /// siting cannot satisfy the requirements (e.g. not enough brown plant
    /// capacity nearby, or an impossible green fraction).
    pub fn solve(&self) -> Result<NetworkDispatch, SolveError> {
        self.solve_with(SimplexOptions::default())
    }

    /// Solves with explicit simplex options.
    ///
    /// # Errors
    ///
    /// See [`NetworkLp::solve`].
    pub fn solve_with(&self, options: SimplexOptions) -> Result<NetworkDispatch, SolveError> {
        let sol = self.model.solve_with(options)?;
        Ok(self.extract(&sol))
    }

    /// Solves with explicit simplex options, optionally warm-starting from
    /// a basis exported by a previous solve of this LP or of a same-shape
    /// neighbour (same site count, storage mode, tech mix, and slot clock).
    /// Returns the dispatch together with the final basis for the caller to
    /// reuse. An unusable warm basis silently falls back to a cold solve.
    ///
    /// # Errors
    ///
    /// See [`NetworkLp::solve`].
    pub fn solve_warm(
        &self,
        options: SimplexOptions,
        warm: Option<&Basis>,
    ) -> Result<(NetworkDispatch, Option<Basis>), SolveError> {
        let sol = self.model.solve_with_basis(options, warm)?;
        let dispatch = self.extract(&sol);
        Ok((dispatch, sol.basis))
    }

    fn extract(&self, sol: &Solution) -> NetworkDispatch {
        let t_count = self.num_slots;
        let mut sites = Vec::with_capacity(self.vars.len());
        let mut green_num = 0.0;
        let mut demand_den = 0.0;
        let mut total_capacity = 0.0;

        for (si, v) in self.vars.iter().enumerate() {
            let take =
                |ids: &Vec<VarId>| -> Vec<f64> { ids.iter().map(|&id| sol[id].max(0.0)).collect() };
            let comp_mw = take(&v.comp);
            let mig_mw = v
                .mig
                .as_ref()
                .map(take)
                .unwrap_or_else(|| vec![0.0; t_count]);
            let green_used_mw = take(&v.green_used);
            let brown_mw = take(&v.brown);
            let nm_push_mw = v.nm_push.as_ref().map(take).unwrap_or_default();
            let nm_draw_mw = v.nm_draw.as_ref().map(take).unwrap_or_default();
            let batt_charge_mw = v.batt_charge.as_ref().map(take).unwrap_or_default();
            let batt_discharge_mw = v.batt_discharge.as_ref().map(take).unwrap_or_default();

            let mut green_mwh = 0.0;
            let mut demand_mwh = 0.0;
            let mut brown_mwh = 0.0;
            let mut drawn_mwh = 0.0;
            let prof_pue = {
                // PUE series is needed for demand accounting.
                &sol.values // placeholder to satisfy borrow; replaced below
            };
            let _ = prof_pue;
            for t in 0..t_count {
                let w = self.weights[t];
                let mut g = green_used_mw[t];
                if !batt_discharge_mw.is_empty() {
                    g += batt_discharge_mw[t];
                }
                if !nm_draw_mw.is_empty() {
                    g += nm_draw_mw[t];
                    drawn_mwh += nm_draw_mw[t] * w;
                }
                green_mwh += g * w;
                brown_mwh += brown_mw[t] * w;
                // demand = green + brown per the balance row.
                demand_mwh += (g + brown_mw[t]) * w;
            }
            let credited = v.credited.map(|c| sol[c]).unwrap_or(0.0);
            let energy_cost_month =
                (brown_mwh + drawn_mwh) * self.price_mwh[si] / MONTHS - credited;

            green_num += green_mwh;
            demand_den += demand_mwh;
            let capacity_mw = sol[v.capacity];
            total_capacity += capacity_mw;

            sites.push(SiteDispatch {
                capacity_mw,
                solar_mw: sol[v.solar],
                wind_mw: sol[v.wind],
                batt_mwh: v.batt.map(|b| sol[b]).unwrap_or(0.0),
                comp_mw,
                mig_mw,
                green_used_mw,
                brown_mw,
                nm_push_mw,
                nm_draw_mw,
                batt_charge_mw,
                batt_discharge_mw,
                energy_cost_month,
                green_mwh_yr: green_mwh,
                demand_mwh_yr: demand_mwh,
                brown_mwh_yr: brown_mwh,
            });
        }

        NetworkDispatch {
            monthly_cost: sol.objective,
            sites,
            green_fraction: if demand_den > 0.0 {
                green_num / demand_den
            } else {
                1.0
            },
            total_capacity_mw: total_capacity,
            iterations: sol.iterations,
            warm_started: sol.warm_started,
            lp_stats: sol.stats,
        }
    }

    /// The unit costs used for each site (order matches construction).
    pub fn unit_costs(&self) -> &[UnitCosts] {
        &self.unit_costs
    }

    /// The placement input this LP was built for.
    pub fn input(&self) -> &PlacementInput {
        &self.input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{StorageMode, TechMix};
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    fn candidates() -> Vec<CandidateSite> {
        let w = WorldCatalog::anchors_only(4);
        CandidateSite::build_all(&w, &ProfileConfig::coarse())
    }

    fn brown_input() -> PlacementInput {
        PlacementInput {
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            total_capacity_mw: 10.0,
            ..PlacementInput::default()
        }
    }

    #[test]
    fn single_brown_site_sizes_exactly() {
        let sites = candidates();
        let kiev = &sites[0];
        let lp = build_network_lp(
            &CostParams::default(),
            &brown_input(),
            &[(kiev, SizeClass::Large)],
        );
        let d = lp.solve().expect("solvable");
        // No migrations in a single-site network → capacity = demand.
        assert!(
            (d.sites[0].capacity_mw - 10.0).abs() < 1e-5,
            "capacity {}",
            d.sites[0].capacity_mw
        );
        assert!((d.total_capacity_mw - 10.0).abs() < 1e-5);
        assert!(d.green_fraction < 1e-9);
        assert!(d.monthly_cost > 1e6, "cost {}", d.monthly_cost);
        // All power is brown and sized demand·pue.
        for t in 0..kiev.profile.len() {
            let expect = 10.0 * kiev.profile.pue[t];
            assert!((d.sites[0].brown_mw[t] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn two_sites_split_equally_by_redundancy() {
        let sites = candidates();
        let lp = build_network_lp(
            &CostParams::default(),
            &brown_input(),
            &[(&sites[0], SizeClass::Large), (&sites[7], SizeClass::Large)],
        );
        let d = lp.solve().expect("solvable");
        // capacity_d ≥ total/2 for both → equal split.
        assert!(
            (d.sites[0].capacity_mw - d.sites[1].capacity_mw).abs() < 1e-5,
            "{} vs {}",
            d.sites[0].capacity_mw,
            d.sites[1].capacity_mw
        );
        assert!(d.total_capacity_mw >= 10.0 - 1e-6);
    }

    #[test]
    fn wind_site_reaches_high_green_fraction_with_net_metering() {
        let sites = candidates();
        let mw = sites
            .iter()
            .find(|s| s.name.contains("Mount Washington"))
            .unwrap();
        let input = PlacementInput {
            total_capacity_mw: 10.0,
            min_green_fraction: 0.8,
            tech: TechMix::WindOnly,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let lp = build_network_lp(&CostParams::default(), &input, &[(mw, SizeClass::Large)]);
        let d = lp.solve().expect("feasible");
        assert!(
            d.green_fraction >= 0.8 - 1e-6,
            "green fraction {}",
            d.green_fraction
        );
        assert!(d.sites[0].wind_mw > 5.0, "wind {}", d.sites[0].wind_mw);
        assert_eq!(d.sites[0].solar_mw, 0.0);
    }

    #[test]
    fn no_storage_is_costlier_than_net_metering_at_high_green() {
        let sites = candidates();
        let harare = sites.iter().find(|s| s.name.contains("Harare")).unwrap();
        let base = PlacementInput {
            total_capacity_mw: 5.0,
            min_green_fraction: 0.9,
            tech: TechMix::SolarOnly,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let with_nm =
            build_network_lp(&CostParams::default(), &base, &[(harare, SizeClass::Small)])
                .solve()
                .expect("net metering feasible");
        let no_storage = PlacementInput {
            storage: StorageMode::None,
            ..base
        };
        let lp = build_network_lp(
            &CostParams::default(),
            &no_storage,
            &[(harare, SizeClass::Small)],
        );
        match lp.solve() {
            // A single solar site cannot be >90% green without storage
            // (nights!), so infeasible is the expected outcome…
            Err(SolveError::Infeasible) => {}
            // …but if slot weights make it feasible, it must cost more.
            Ok(d) => assert!(d.monthly_cost > with_nm.monthly_cost),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn batteries_enable_overnight_solar() {
        let sites = candidates();
        let nairobi = sites.iter().find(|s| s.name.contains("Nairobi")).unwrap();
        let input = PlacementInput {
            total_capacity_mw: 5.0,
            min_green_fraction: 0.9,
            tech: TechMix::SolarOnly,
            storage: StorageMode::Batteries,
            ..PlacementInput::default()
        };
        let lp = build_network_lp(
            &CostParams::default(),
            &input,
            &[(nairobi, SizeClass::Small)],
        );
        let d = lp.solve().expect("batteries make 90% solar feasible");
        assert!(
            d.sites[0].batt_mwh > 1.0,
            "batteries {}",
            d.sites[0].batt_mwh
        );
        assert!(d.green_fraction >= 0.9 - 1e-6);
    }

    #[test]
    fn migration_overhead_raises_cost() {
        let sites = candidates();
        let pair = [
            (&sites[5], SizeClass::Large), // Mexico City
            (&sites[6], SizeClass::Large), // Guam
        ];
        let base = PlacementInput {
            total_capacity_mw: 10.0,
            min_green_fraction: 0.9,
            tech: TechMix::SolarOnly,
            storage: StorageMode::None,
            migration_fraction: 1.0,
            ..PlacementInput::default()
        };
        let full = build_network_lp(&CostParams::default(), &base, &pair)
            .solve()
            .expect("two time zones make no-storage solar feasible");
        let free = PlacementInput {
            migration_fraction: 0.0,
            ..base
        };
        let cheap = build_network_lp(&CostParams::default(), &free, &pair)
            .solve()
            .expect("free migration solves too");
        assert!(
            full.monthly_cost >= cheap.monthly_cost - 1.0,
            "θ=1 {} vs θ=0 {}",
            full.monthly_cost,
            cheap.monthly_cost
        );
    }

    #[test]
    fn credit_never_exceeds_payable() {
        // A windy site told to be 100% green: with full credit its energy
        // bill must floor at zero, never go negative.
        let sites = candidates();
        let mw = sites
            .iter()
            .find(|s| s.name.contains("Mount Washington"))
            .unwrap();
        let input = PlacementInput {
            total_capacity_mw: 10.0,
            min_green_fraction: 1.0,
            tech: TechMix::WindOnly,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let lp = build_network_lp(&CostParams::default(), &input, &[(mw, SizeClass::Large)]);
        let d = lp.solve().expect("feasible");
        assert!(
            d.sites[0].energy_cost_month >= -1e-6,
            "energy cost {}",
            d.sites[0].energy_cost_month
        );
    }

    #[test]
    fn infeasible_when_brown_capped_and_no_green_allowed() {
        let mut sites = candidates();
        // Choke the brown plant: 1 MW nearby cap × 25% = 0.25 MW available.
        sites[0].econ.near_plant_cap_kw = 1000.0;
        let input = PlacementInput {
            total_capacity_mw: 10.0,
            ..brown_input()
        };
        let lp = build_network_lp(
            &CostParams::default(),
            &input,
            &[(&sites[0], SizeClass::Large)],
        );
        assert_eq!(lp.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn lp_solution_is_feasible_by_independent_check() {
        let sites = candidates();
        let input = PlacementInput {
            total_capacity_mw: 10.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let lp = build_network_lp(
            &CostParams::default(),
            &input,
            &[(&sites[3], SizeClass::Large), (&sites[4], SizeClass::Large)],
        );
        let sol = lp.model().solve().expect("solve");
        greencloud_lp::validate::assert_feasible(lp.model(), &sol.values, 1e-6);
    }
}
