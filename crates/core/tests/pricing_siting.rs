//! Iteration-count regression on the siting LP fixtures: devex pricing
//! exists to reach the optimum in fewer pivots than Dantzig, and both must
//! land on the same objective. If devex ever needs *more* iterations than
//! Dantzig on these fixtures, its weight maintenance has regressed.

use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::candidate::CandidateSite;
use greencloud_core::formulation::build_network_lp;
use greencloud_core::framework::{PlacementInput, SizeClass, StorageMode, TechMix};
use greencloud_cost::params::CostParams;
use greencloud_lp::{PricingMode, SimplexOptions};

type Fixture = (&'static str, PlacementInput, Vec<(usize, SizeClass)>);

fn solve_iters(lp: &greencloud_core::formulation::NetworkLp, pricing: PricingMode) -> (f64, usize) {
    let (d, _) = lp
        .solve_warm(
            SimplexOptions {
                pricing,
                ..SimplexOptions::default()
            },
            None,
        )
        .expect("siting fixture solvable");
    (d.monthly_cost, d.iterations)
}

#[test]
fn devex_needs_no_more_iterations_than_dantzig_on_siting_fixtures() {
    let w = WorldCatalog::anchors_only(5);
    let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
    let params = CostParams::default();

    let fixtures: Vec<Fixture> = vec![
        (
            "single wind site, net metering",
            PlacementInput {
                total_capacity_mw: 25.0,
                min_green_fraction: 0.5,
                min_availability: 0.0,
                tech: TechMix::WindOnly,
                storage: StorageMode::NetMetering,
                ..PlacementInput::default()
            },
            vec![(3, SizeClass::Large)],
        ),
        (
            "two-site mixed network",
            PlacementInput {
                total_capacity_mw: 30.0,
                min_green_fraction: 0.5,
                tech: TechMix::Both,
                storage: StorageMode::NetMetering,
                ..PlacementInput::default()
            },
            vec![(3, SizeClass::Large), (4, SizeClass::Large)],
        ),
        (
            "single solar site with batteries",
            PlacementInput {
                total_capacity_mw: 5.0,
                min_green_fraction: 0.9,
                tech: TechMix::SolarOnly,
                storage: StorageMode::Batteries,
                ..PlacementInput::default()
            },
            vec![(2, SizeClass::Small)],
        ),
    ];

    let mut devex_total = 0usize;
    let mut dantzig_total = 0usize;
    for (name, input, siting) in &fixtures {
        let sites: Vec<_> = siting.iter().map(|&(i, c)| (&cands[i], c)).collect();
        let lp = build_network_lp(&params, input, &sites);
        let (devex_obj, devex_iters) = solve_iters(&lp, PricingMode::Devex);
        let (dantzig_obj, dantzig_iters) = solve_iters(&lp, PricingMode::Dantzig);
        let scale = 1.0 + devex_obj.abs();
        assert!(
            (devex_obj - dantzig_obj).abs() < 1e-6 * scale,
            "{name}: objectives differ: devex {devex_obj} vs dantzig {dantzig_obj}"
        );
        devex_total += devex_iters;
        dantzig_total += dantzig_iters;
        println!("{name}: devex {devex_iters} iters, dantzig {dantzig_iters} iters");
    }
    // Per-fixture counts wobble with tie-breaking; the aggregate is the
    // regression signal devex must hold.
    assert!(
        devex_total <= dantzig_total,
        "devex spent {devex_total} iterations vs dantzig {dantzig_total} across the fixtures"
    );
}
