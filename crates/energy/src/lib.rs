//! Energy-conversion models: photovoltaics, wind turbines, cooling (PUE),
//! and green-energy storage.
//!
//! These models turn the synthetic weather of `greencloud-climate` into the
//! paper's α(d,t) and β(d,t) — the fraction of installed solar and wind
//! capacity a plant at location *d* produces during slot *t* — plus the
//! PUE(d,t) cooling-overhead factor:
//!
//! * [`pv::PvModel`] — 15%-efficiency-class PV with temperature derating and
//!   conversion losses (α).
//! * [`windturbine::Turbine`] — the Enercon E-126 power curve with air
//!   density correction and storm cut-out (β).
//! * [`pue::PueModel`] — the paper's Fig. 4 PUE-vs-outside-temperature
//!   curve, measured on a free-cooled micro-datacenter.
//! * [`battery::Battery`] — charge-efficiency-limited storage ledger.
//! * [`netmeter::NetMeter`] — grid storage via net metering with an annual
//!   true-up and a credit fraction.
//! * [`capacity_factor`] — annual aggregation of α/β/PUE over a TMY year.
//! * [`profile::EnergyProfile`] — α/β/PUE on the representative-day slot
//!   clock, the direct input of the siting LP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod capacity_factor;
pub mod netmeter;
pub mod profile;
pub mod pue;
pub mod pv;
pub mod windturbine;

pub use battery::Battery;
pub use capacity_factor::CapacityFactors;
pub use netmeter::NetMeter;
pub use profile::EnergyProfile;
pub use pue::PueModel;
pub use pv::PvModel;
pub use windturbine::Turbine;
