//! Annual capacity factors and PUE statistics for a location.

use crate::pue::PueModel;
use crate::pv::PvModel;
use crate::windturbine::Turbine;
use greencloud_climate::weather::Tmy;
use serde::{Deserialize, Serialize};

/// Aggregated annual statistics of a location's energy characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityFactors {
    /// Solar capacity factor: annual mean of α(d,t).
    pub solar: f64,
    /// Wind capacity factor: annual mean of β(d,t).
    pub wind: f64,
    /// Annual mean PUE.
    pub mean_pue: f64,
    /// Annual maximum PUE (sizes the cooling/electrical plant).
    pub max_pue: f64,
}

impl CapacityFactors {
    /// Computes the factors over a full TMY year with explicit models.
    pub fn from_tmy(tmy: &Tmy, pv: &PvModel, turbine: &Turbine, pue: &PueModel) -> Self {
        let n = tmy.len();
        assert!(n > 0, "empty TMY");
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        let mut sum_p = 0.0;
        let mut max_p = f64::NEG_INFINITY;
        for h in 0..n {
            sum_a += pv.alpha(tmy.ghi_wm2[h], tmy.temp_c[h]);
            sum_b += turbine.beta(tmy.wind_ms[h], tmy.pressure_kpa[h], tmy.temp_c[h]);
            let p = pue.pue(tmy.temp_c[h]);
            sum_p += p;
            max_p = max_p.max(p);
        }
        CapacityFactors {
            solar: sum_a / n as f64,
            wind: sum_b / n as f64,
            // The accumulated sum can round a hair above n·max when every
            // slot has the same PUE (constant-climate sites); clamp so
            // `mean_pue ≤ max_pue` holds exactly.
            mean_pue: (sum_p / n as f64).min(max_p),
            max_pue: max_p,
        }
    }

    /// Computes the factors with the paper-default models (15%-class PV,
    /// E-126 turbine, Fig. 4 PUE).
    pub fn with_default_models(tmy: &Tmy) -> Self {
        Self::from_tmy(
            tmy,
            &PvModel::default(),
            &Turbine::default(),
            &PueModel::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greencloud_climate::catalog::WorldCatalog;

    #[test]
    fn anchor_capacity_factors_match_paper_bands() {
        let w = WorldCatalog::anchors_only(4);

        let mw = w.find("Mount Washington").unwrap();
        let cf = CapacityFactors::with_default_models(&w.tmy(mw.id));
        assert!(
            (0.42..=0.68).contains(&cf.wind),
            "Mount Washington wind CF {} (paper: 55.6%)",
            cf.wind
        );
        assert!(cf.mean_pue < 1.07, "cold summit PUE {}", cf.mean_pue);

        let harare = w.find("Harare").unwrap();
        let cf = CapacityFactors::with_default_models(&w.tmy(harare.id));
        assert!(
            (0.17..=0.27).contains(&cf.solar),
            "Harare solar CF {} (paper: 22.4%)",
            cf.solar
        );

        let nairobi = w.find("Nairobi").unwrap();
        let cf = CapacityFactors::with_default_models(&w.tmy(nairobi.id));
        assert!(
            (0.16..=0.26).contains(&cf.solar),
            "Nairobi solar CF {} (paper: 20.9%)",
            cf.solar
        );

        let burke = w.find("Burke").unwrap();
        let cf = CapacityFactors::with_default_models(&w.tmy(burke.id));
        assert!(
            (0.14..=0.30).contains(&cf.wind),
            "Burke wind CF {} (paper: 20.9%)",
            cf.wind
        );
    }

    #[test]
    fn factors_within_physical_bounds() {
        let w = WorldCatalog::synthetic(40, 7);
        for loc in w.iter() {
            let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
            assert!(
                (0.0..=0.45).contains(&cf.solar),
                "{}: solar {}",
                loc.name,
                cf.solar
            );
            assert!(
                (0.0..=0.85).contains(&cf.wind),
                "{}: wind {}",
                loc.name,
                cf.wind
            );
            assert!(cf.mean_pue >= 1.05 && cf.mean_pue <= 1.30, "{}", loc.name);
            assert!(cf.max_pue >= cf.mean_pue && cf.max_pue <= 1.5);
        }
    }

    #[test]
    fn paper_fig5_shape_high_wind_sites_run_cool() {
        // Fig. 5: the windiest locations have low PUE. Check the correlation
        // across a synthetic world sample.
        let w = WorldCatalog::synthetic(120, 12);
        let mut windy_pue = Vec::new();
        let mut calm_pue = Vec::new();
        for loc in w.iter() {
            let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
            if cf.wind > 0.30 {
                windy_pue.push(cf.mean_pue);
            } else if cf.wind < 0.10 {
                calm_pue.push(cf.mean_pue);
            }
        }
        assert!(!windy_pue.is_empty() && !calm_pue.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&windy_pue) <= avg(&calm_pue) + 0.01,
            "windy {} vs calm {}",
            avg(&windy_pue),
            avg(&calm_pue)
        );
    }
}
