//! Wind turbine production model (Enercon E-126, the paper's reference).
//!
//! β(d,t) is the fraction of installed (rated) capacity produced at the
//! slot's wind speed, using the published E-126 power curve with linear
//! interpolation, an air-density correction in the sub-rated region, and
//! the storm-control ramp-down Enercon fits above 28 m/s.

use serde::{Deserialize, Serialize};

/// Published E-126 power curve `(wind speed m/s, output kW)` at standard
/// air density (1.225 kg/m³).
const E126_CURVE: &[(f64, f64)] = &[
    (3.0, 55.0),
    (4.0, 175.0),
    (5.0, 410.0),
    (6.0, 760.0),
    (7.0, 1250.0),
    (8.0, 1900.0),
    (9.0, 2700.0),
    (10.0, 3750.0),
    (11.0, 4850.0),
    (12.0, 5750.0),
    (13.0, 6500.0),
    (14.0, 7000.0),
    (15.0, 7350.0),
    (16.0, 7500.0),
    (17.0, 7580.0),
];

/// Reference air density, kg/m³.
pub const RHO_0: f64 = 1.225;
/// Specific gas constant of dry air, J/(kg·K).
const R_AIR: f64 = 287.05;

/// A wind turbine model producing the paper's β(d,t).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Turbine {
    /// Rated electrical output, kW.
    pub rated_kw: f64,
    /// Cut-in wind speed, m/s.
    pub cut_in_ms: f64,
    /// Start of the storm-control ramp-down, m/s.
    pub storm_start_ms: f64,
    /// Full shutdown speed, m/s.
    pub cut_out_ms: f64,
    /// Electrical conversion/collection losses applied on top of the curve.
    pub conversion_loss: f64,
}

impl Default for Turbine {
    /// The Enercon E-126 (7.58 MW), as used by the paper.
    fn default() -> Self {
        Self {
            rated_kw: 7580.0,
            cut_in_ms: 3.0,
            storm_start_ms: 28.0,
            cut_out_ms: 34.0,
            conversion_loss: 0.03,
        }
    }
}

impl Turbine {
    /// Air density from station pressure (kPa) and temperature (°C).
    pub fn air_density(pressure_kpa: f64, temp_c: f64) -> f64 {
        pressure_kpa * 1000.0 / (R_AIR * (temp_c + 273.15))
    }

    /// Electrical output in kW at `wind_ms`, `pressure_kpa`, `temp_c`.
    pub fn power_kw(&self, wind_ms: f64, pressure_kpa: f64, temp_c: f64) -> f64 {
        if wind_ms < self.cut_in_ms || wind_ms >= self.cut_out_ms {
            return 0.0;
        }
        let rho = Self::air_density(pressure_kpa, temp_c);
        let density_factor = (rho / RHO_0).clamp(0.5, 1.3);
        let base = if wind_ms >= self.storm_start_ms {
            // Storm control: linear ramp from rated to zero.
            let f = 1.0 - (wind_ms - self.storm_start_ms) / (self.cut_out_ms - self.storm_start_ms);
            self.rated_kw * f
        } else {
            let curve = interpolate(E126_CURVE, wind_ms);
            // Density scales aerodynamic power but can never exceed rated.
            (curve * density_factor).min(self.rated_kw)
        };
        base * (1.0 - self.conversion_loss)
    }

    /// Production as a fraction of installed capacity (the paper's β).
    pub fn beta(&self, wind_ms: f64, pressure_kpa: f64, temp_c: f64) -> f64 {
        self.power_kw(wind_ms, pressure_kpa, temp_c) / self.rated_kw
    }
}

/// Piecewise-linear interpolation with zero below and saturation above the
/// table (the region above the last point is rated output).
fn interpolate(curve: &[(f64, f64)], x: f64) -> f64 {
    if x <= curve[0].0 {
        return if x == curve[0].0 { curve[0].1 } else { 0.0 };
    }
    if x >= curve[curve.len() - 1].0 {
        return curve[curve.len() - 1].1;
    }
    let i = curve.partition_point(|&(v, _)| v <= x) - 1;
    let (x0, y0) = curve[i];
    let (x1, y1) = curve[i + 1];
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: f64 = 101.325;
    const T0: f64 = 15.0;

    #[test]
    fn below_cut_in_is_zero() {
        let t = Turbine::default();
        assert_eq!(t.power_kw(0.0, P0, T0), 0.0);
        assert_eq!(t.power_kw(2.9, P0, T0), 0.0);
    }

    #[test]
    fn beyond_cut_out_is_zero() {
        let t = Turbine::default();
        assert_eq!(t.power_kw(34.0, P0, T0), 0.0);
        assert_eq!(t.power_kw(50.0, P0, T0), 0.0);
    }

    #[test]
    fn rated_region_reaches_rated_minus_losses() {
        let t = Turbine::default();
        let p = t.power_kw(20.0, P0, T0);
        assert!((p - 7580.0 * 0.97).abs() < 1.0, "power {p}");
        assert!((t.beta(20.0, P0, T0) - 0.97).abs() < 1e-6);
    }

    #[test]
    fn curve_interpolation_between_points() {
        let t = Turbine::default();
        // Midway between 8 m/s (1900 kW) and 9 m/s (2700 kW) at std density.
        let p = t.power_kw(8.5, P0, T0);
        let rho = Turbine::air_density(P0, T0);
        let expected = 2300.0 * (rho / RHO_0) * 0.97;
        assert!((p - expected).abs() < 1.0, "power {p} expected {expected}");
    }

    #[test]
    fn storm_control_ramps_down() {
        let t = Turbine::default();
        let a = t.beta(28.0, P0, T0);
        let b = t.beta(31.0, P0, T0);
        let c = t.beta(33.9, P0, T0);
        assert!(a > b && b > c, "{a} {b} {c}");
        assert!((a - 0.97).abs() < 1e-6);
        assert!(c < 0.05);
    }

    #[test]
    fn thin_air_reduces_output() {
        let t = Turbine::default();
        // Mexico City altitude ~2240 m → ~78 kPa.
        let sea = t.power_kw(10.0, 101.3, 15.0);
        let alto = t.power_kw(10.0, 78.0, 15.0);
        assert!(alto < sea * 0.85, "sea {sea} alto {alto}");
    }

    #[test]
    fn cold_air_increases_output_sub_rated() {
        let t = Turbine::default();
        let warm = t.power_kw(10.0, P0, 30.0);
        let cold = t.power_kw(10.0, P0, -10.0);
        assert!(cold > warm);
    }

    #[test]
    fn beta_bounded_unit() {
        let t = Turbine::default();
        for v in 0..40 {
            let b = t.beta(v as f64, P0, T0);
            assert!((0.0..=1.0).contains(&b), "beta({v}) = {b}");
        }
    }

    #[test]
    fn monotone_up_to_rated() {
        let t = Turbine::default();
        let mut prev = -1.0;
        for v in 0..=17 {
            let b = t.beta(v as f64, P0, T0);
            assert!(b >= prev, "beta({v})={b} < {prev}");
            prev = b;
        }
    }
}
