//! Power Usage Effectiveness as a function of outside temperature.
//!
//! Reproduces the paper's Fig. 4: a free-cooled micro-datacenter (air-side
//! economizer + direct-expansion air conditioner) holds PUE ≈ 1.05 while
//! outside air is cool enough, then the compressor takes over and PUE climbs
//! to ≈ 1.4 at 45 °C. We fit a piecewise-linear curve through the figure's
//! knee points.

use serde::{Deserialize, Serialize};

/// `(outside °C, PUE)` knots of the paper's Fig. 4 curve.
const FIG4_KNOTS: &[(f64, f64)] = &[
    (15.0, 1.050),
    (20.0, 1.060),
    (25.0, 1.080),
    (30.0, 1.130),
    (35.0, 1.200),
    (40.0, 1.300),
    (45.0, 1.400),
];

/// PUE model (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PueModel;

impl PueModel {
    /// Creates the Fig. 4 model.
    pub fn new() -> Self {
        Self
    }

    /// PUE at the given outside air temperature.
    ///
    /// Below 15 °C free cooling pins PUE at 1.05; above 45 °C the slope of
    /// the last segment continues, capped at 1.5.
    pub fn pue(&self, outside_c: f64) -> f64 {
        let knots = FIG4_KNOTS;
        if outside_c <= knots[0].0 {
            return knots[0].1;
        }
        let last = knots[knots.len() - 1];
        if outside_c >= last.0 {
            let prev = knots[knots.len() - 2];
            let slope = (last.1 - prev.1) / (last.0 - prev.0);
            return (last.1 + slope * (outside_c - last.0)).min(1.5);
        }
        let i = knots.partition_point(|&(t, _)| t <= outside_c) - 1;
        let (x0, y0) = knots[i];
        let (x1, y1) = knots[i + 1];
        y0 + (y1 - y0) * (outside_c - x0) / (x1 - x0)
    }

    /// Mean PUE over a temperature series.
    pub fn mean_pue(&self, temps_c: &[f64]) -> f64 {
        if temps_c.is_empty() {
            return self.pue(15.0);
        }
        temps_c.iter().map(|&t| self.pue(t)).sum::<f64>() / temps_c.len() as f64
    }

    /// Maximum PUE over a temperature series (the paper's `maxPUE(d)`,
    /// which sizes the datacenter's electrical/cooling plant).
    pub fn max_pue(&self, temps_c: &[f64]) -> f64 {
        temps_c
            .iter()
            .map(|&t| self.pue(t))
            .fold(self.pue(f64::NEG_INFINITY), f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_knee_points() {
        let m = PueModel::new();
        for &(t, p) in FIG4_KNOTS {
            assert!((m.pue(t) - p).abs() < 1e-12, "pue({t})");
        }
    }

    #[test]
    fn free_cooling_floor() {
        let m = PueModel::new();
        assert_eq!(m.pue(-20.0), 1.05);
        assert_eq!(m.pue(0.0), 1.05);
        assert_eq!(m.pue(15.0), 1.05);
    }

    #[test]
    fn extrapolation_is_capped() {
        let m = PueModel::new();
        assert!(m.pue(50.0) <= 1.5);
        assert!(m.pue(100.0) <= 1.5);
        assert!(m.pue(47.0) > 1.4);
    }

    #[test]
    fn monotone_nondecreasing() {
        let m = PueModel::new();
        let mut prev = 0.0;
        for i in -30..60 {
            let p = m.pue(i as f64);
            assert!(p >= prev, "pue({i}) = {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn paper_range_of_average_pues() {
        // The paper reports average PUEs between 1.06 and 1.13 across its
        // locations; synthetic temperate series should land inside.
        let m = PueModel::new();
        let cool: Vec<f64> = (0..8760)
            .map(|h| 5.0 + 10.0 * ((h % 24) as f64 / 24.0))
            .collect();
        let warm: Vec<f64> = (0..8760)
            .map(|h| 18.0 + 12.0 * ((h % 24) as f64 / 24.0))
            .collect();
        let a = m.mean_pue(&cool);
        let b = m.mean_pue(&warm);
        assert!((1.05..1.08).contains(&a), "cool mean {a}");
        assert!(b > a && b < 1.2, "warm mean {b}");
    }

    #[test]
    fn max_pue_tracks_hottest_hour() {
        let m = PueModel::new();
        let temps = [10.0, 22.0, 38.0, 16.0];
        assert!((m.max_pue(&temps) - m.pue(38.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_series_defaults_to_floor() {
        let m = PueModel::new();
        assert_eq!(m.mean_pue(&[]), 1.05);
    }
}
