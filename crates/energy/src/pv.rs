//! Photovoltaic production model.
//!
//! Installed capacity is rated at Standard Test Conditions (1000 W/m², cell
//! temperature 25 °C), so the per-slot production fraction α is the plane-of-
//! array irradiance relative to 1000 W/m², corrected for cell temperature
//! and the fixed system losses the paper folds into α (inverter, wiring,
//! soiling). The 15% panel efficiency the paper cites is already captured by
//! the STC rating; it determines *land area per kW* (Table I's `areaSolar`),
//! not α.

use serde::{Deserialize, Serialize};

/// PV array model producing the paper's α(d,t).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PvModel {
    /// Fixed DC→AC system derate (inverter, wiring, soiling).
    pub system_derate: f64,
    /// Relative power loss per °C of cell temperature above 25 °C.
    pub temp_coeff_per_c: f64,
    /// Cell-temperature rise per W/m² of irradiance (NOCT model).
    pub cell_temp_rise_per_wm2: f64,
}

impl Default for PvModel {
    fn default() -> Self {
        Self {
            // Typical 2011-era multi-crystalline system losses (~15%).
            system_derate: 0.85,
            temp_coeff_per_c: 0.004,
            // NOCT 47 °C: (47-20)/800 ≈ 0.034 °C per W/m².
            cell_temp_rise_per_wm2: 0.034,
        }
    }
}

impl PvModel {
    /// Production as a fraction of installed (STC) capacity for a slot with
    /// global irradiance `ghi_wm2` and ambient temperature `ambient_c`.
    ///
    /// Always in `[0, ~1.05]` (cold clear days can slightly exceed STC).
    pub fn alpha(&self, ghi_wm2: f64, ambient_c: f64) -> f64 {
        if ghi_wm2 <= 0.0 {
            return 0.0;
        }
        let cell_c = ambient_c + self.cell_temp_rise_per_wm2 * ghi_wm2;
        let temp_factor = 1.0 - self.temp_coeff_per_c * (cell_c - 25.0);
        (ghi_wm2 / 1000.0 * self.system_derate * temp_factor).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dark_means_zero() {
        let pv = PvModel::default();
        assert_eq!(pv.alpha(0.0, 20.0), 0.0);
        assert_eq!(pv.alpha(-5.0, 20.0), 0.0);
    }

    #[test]
    fn stc_reference_point() {
        let pv = PvModel::default();
        // At 1000 W/m² the cell runs hot, so output is below the derate.
        let a = pv.alpha(1000.0, 25.0 - 34.0); // ambient chosen so cell = 25 °C
        assert!((a - 0.85).abs() < 1e-9, "alpha {a}");
    }

    #[test]
    fn hot_cells_lose_power() {
        let pv = PvModel::default();
        let cool = pv.alpha(800.0, 5.0);
        let hot = pv.alpha(800.0, 40.0);
        assert!(cool > hot);
        // 35 °C ambient delta → 14% relative difference.
        assert!(
            (cool / hot - 1.0 - 0.004 * 35.0 / (1.0 - 0.004 * (40.0 + 27.2 - 25.0))).abs() < 0.05
        );
    }

    #[test]
    fn alpha_is_monotone_in_irradiance_at_fixed_temp() {
        let pv = PvModel::default();
        let mut prev = 0.0;
        for g in (0..=10).map(|i| i as f64 * 100.0) {
            let a = pv.alpha(g, 15.0);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn bounded_output() {
        let pv = PvModel::default();
        for g in [100.0, 400.0, 700.0, 1000.0, 1098.0] {
            for t in [-30.0, 0.0, 25.0, 45.0] {
                let a = pv.alpha(g, t);
                assert!((0.0..=1.15).contains(&a), "alpha({g},{t}) = {a}");
            }
        }
    }
}
