//! Net-metering ledger: the grid as a (constrained) green-energy bank.
//!
//! Surplus green energy pushed into the grid is banked; energy drawn later
//! is netted against the bank at an annual true-up. The utility credits
//! pushed energy at `credit_fraction` of the retail price, but — matching
//! real tariffs and closing the paper's cash-out loophole — total credit
//! revenue can never exceed what the operator actually pays the utility.

use serde::{Deserialize, Serialize};

/// A per-location net-metering account.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetMeter {
    banked_kwh: f64,
    pushed_kwh: f64,
    drawn_kwh: f64,
    credit_fraction: f64,
}

impl NetMeter {
    /// Creates an account crediting pushes at `credit_fraction` (0..=1) of
    /// retail price.
    ///
    /// # Panics
    ///
    /// Panics if `credit_fraction ∉ [0, 1]`.
    pub fn new(credit_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&credit_fraction),
            "credit fraction must be within [0, 1]"
        );
        Self {
            banked_kwh: 0.0,
            pushed_kwh: 0.0,
            drawn_kwh: 0.0,
            credit_fraction,
        }
    }

    /// Pushes surplus green energy into the grid.
    pub fn push(&mut self, kwh: f64) {
        if kwh > 0.0 {
            self.banked_kwh += kwh;
            self.pushed_kwh += kwh;
        }
    }

    /// Draws banked energy back; returns the amount actually covered by the
    /// bank (the remainder must be bought as brown energy).
    pub fn draw(&mut self, kwh: f64) -> f64 {
        if kwh <= 0.0 {
            return 0.0;
        }
        let covered = kwh.min(self.banked_kwh);
        self.banked_kwh -= covered;
        self.drawn_kwh += covered;
        covered
    }

    /// Currently banked energy, kWh.
    pub fn banked_kwh(&self) -> f64 {
        self.banked_kwh
    }

    /// Total energy pushed since creation, kWh.
    pub fn pushed_kwh(&self) -> f64 {
        self.pushed_kwh
    }

    /// Total energy drawn back since creation, kWh.
    pub fn drawn_kwh(&self) -> f64 {
        self.drawn_kwh
    }

    /// Net energy cost at the annual true-up, given the retail price and the
    /// operator's direct brown-energy purchase.
    ///
    /// Credits apply at `credit_fraction · price` per pushed kWh but are
    /// capped at the total amount payable — the utility never writes a
    /// cheque (no cash-out).
    pub fn settle_usd(&self, price_usd_per_kwh: f64, brown_kwh: f64) -> f64 {
        let payable = (brown_kwh + self.drawn_kwh) * price_usd_per_kwh;
        let credit = (self.pushed_kwh * self.credit_fraction * price_usd_per_kwh).min(payable);
        payable - credit
    }
}

impl Default for NetMeter {
    /// Full-retail-price crediting, the paper's base assumption.
    fn default() -> Self {
        Self::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_draw_round_trips() {
        let mut nm = NetMeter::default();
        nm.push(100.0);
        assert_eq!(nm.draw(60.0), 60.0);
        assert_eq!(nm.banked_kwh(), 40.0);
        assert_eq!(nm.draw(100.0), 40.0);
        assert_eq!(nm.banked_kwh(), 0.0);
    }

    #[test]
    fn draw_beyond_bank_is_partial() {
        let mut nm = NetMeter::default();
        nm.push(10.0);
        assert_eq!(nm.draw(25.0), 10.0);
    }

    #[test]
    fn full_credit_storage_is_free() {
        // Push 100, draw 100 back: pays nothing at 100% credit.
        let mut nm = NetMeter::default();
        nm.push(100.0);
        nm.draw(100.0);
        assert_eq!(nm.settle_usd(0.09, 0.0), 0.0);
    }

    #[test]
    fn partial_credit_charges_the_cycled_energy() {
        // At 50% credit, cycling 100 kWh costs 100·price − 50·price.
        let mut nm = NetMeter::new(0.5);
        nm.push(100.0);
        nm.draw(100.0);
        let cost = nm.settle_usd(0.10, 0.0);
        assert!((cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn no_cash_out() {
        // Pushing without consuming earns nothing: the loophole the paper's
        // literal brownCost formula would allow is closed.
        let mut nm = NetMeter::default();
        nm.push(1_000_000.0);
        assert_eq!(nm.settle_usd(0.10, 0.0), 0.0);
        // …but the credit does offset brown purchases.
        let cost_with_brown = nm.settle_usd(0.10, 500.0);
        assert_eq!(cost_with_brown, 0.0);
    }

    #[test]
    fn credit_offsets_brown_purchases() {
        let mut nm = NetMeter::new(1.0);
        nm.push(300.0);
        // 500 kWh brown at $0.1: payable $50, credit min(30, 50) = 30.
        assert!((nm.settle_usd(0.10, 500.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn negative_amounts_ignored() {
        let mut nm = NetMeter::default();
        nm.push(-5.0);
        assert_eq!(nm.banked_kwh(), 0.0);
        assert_eq!(nm.draw(-5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "credit fraction")]
    fn rejects_bad_credit() {
        NetMeter::new(1.5);
    }
}
