//! Per-slot energy coefficients: the α/β/PUE series consumed by the LP.

use crate::pue::PueModel;
use crate::pv::PvModel;
use crate::windturbine::Turbine;
use greencloud_climate::profiles::WeatherProfile;
use greencloud_climate::weather::Tmy;
use serde::{Deserialize, Serialize};

/// α, β, and PUE per time slot, with slot weights.
///
/// Built either from a representative-day [`WeatherProfile`] (for the siting
/// optimization) or from a full hourly TMY (for GreenNebula emulation, where
/// every weight is one hour).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyProfile {
    /// Solar production fraction per slot.
    pub alpha: Vec<f64>,
    /// Wind production fraction per slot.
    pub beta: Vec<f64>,
    /// PUE per slot.
    pub pue: Vec<f64>,
    /// Hours of the year each slot represents.
    pub weight_hours: Vec<f64>,
    /// Slots per contiguous dispatch block (battery cyclic boundary);
    /// 24 for representative days, the full year for hourly profiles.
    pub block_len: usize,
}

impl EnergyProfile {
    /// Converts a representative-day weather profile with explicit models.
    pub fn from_weather(
        weather: &WeatherProfile,
        pv: &PvModel,
        turbine: &Turbine,
        pue: &PueModel,
    ) -> Self {
        let slots = weather.slots();
        let mut p = EnergyProfile {
            alpha: Vec::with_capacity(slots.len()),
            beta: Vec::with_capacity(slots.len()),
            pue: Vec::with_capacity(slots.len()),
            weight_hours: Vec::with_capacity(slots.len()),
            block_len: 24,
        };
        for s in slots {
            p.alpha.push(pv.alpha(s.ghi_wm2, s.temp_c));
            p.beta
                .push(turbine.beta(s.wind_ms, s.pressure_kpa, s.temp_c));
            p.pue.push(pue.pue(s.temp_c));
            p.weight_hours.push(s.weight_hours);
        }
        p
    }

    /// Converts a representative-day weather profile with default models.
    pub fn from_weather_default(weather: &WeatherProfile) -> Self {
        Self::from_weather(
            weather,
            &PvModel::default(),
            &Turbine::default(),
            &PueModel::new(),
        )
    }

    /// Full-resolution hourly profile over a TMY year (weights all 1 h).
    pub fn from_tmy_hourly(tmy: &Tmy, pv: &PvModel, turbine: &Turbine, pue: &PueModel) -> Self {
        let n = tmy.len();
        let mut p = EnergyProfile {
            alpha: Vec::with_capacity(n),
            beta: Vec::with_capacity(n),
            pue: Vec::with_capacity(n),
            weight_hours: vec![1.0; n],
            block_len: n,
        };
        for h in 0..n {
            p.alpha.push(pv.alpha(tmy.ghi_wm2[h], tmy.temp_c[h]));
            p.beta
                .push(turbine.beta(tmy.wind_ms[h], tmy.pressure_kpa[h], tmy.temp_c[h]));
            p.pue.push(pue.pue(tmy.temp_c[h]));
        }
        p
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.alpha.len()
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.alpha.is_empty()
    }

    /// Number of dispatch blocks (battery cycles independently per block).
    pub fn num_blocks(&self) -> usize {
        self.len().div_ceil(self.block_len)
    }

    /// The dispatch block a slot belongs to.
    pub fn block_of(&self, slot: usize) -> usize {
        slot / self.block_len
    }

    /// Total hours represented.
    pub fn total_hours(&self) -> f64 {
        self.weight_hours.iter().sum()
    }

    /// Weight-averaged solar capacity factor of the profile.
    pub fn solar_cf(&self) -> f64 {
        self.weighted_mean(&self.alpha)
    }

    /// Weight-averaged wind capacity factor of the profile.
    pub fn wind_cf(&self) -> f64 {
        self.weighted_mean(&self.beta)
    }

    /// Weight-averaged PUE of the profile.
    pub fn mean_pue(&self) -> f64 {
        self.weighted_mean(&self.pue)
    }

    /// Maximum PUE across slots.
    pub fn max_pue(&self) -> f64 {
        self.pue.iter().copied().fold(1.0, f64::max)
    }

    fn weighted_mean(&self, series: &[f64]) -> f64 {
        let total = self.total_hours();
        if total == 0.0 {
            return 0.0;
        }
        series
            .iter()
            .zip(&self.weight_hours)
            .map(|(v, w)| v * w)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    fn build() -> EnergyProfile {
        let w = WorldCatalog::anchors_only(6);
        let loc = w.find("Burke").unwrap();
        let tmy = w.tmy(loc.id);
        let wp = WeatherProfile::from_tmy(&tmy, &ProfileConfig::default());
        EnergyProfile::from_weather_default(&wp)
    }

    #[test]
    fn slot_counts_and_blocks() {
        let p = build();
        assert_eq!(p.len(), 192);
        assert_eq!(p.num_blocks(), 8);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(47), 1);
        assert!((p.total_hours() - 8760.0).abs() < 1e-6);
    }

    #[test]
    fn series_within_bounds() {
        let p = build();
        for i in 0..p.len() {
            assert!((0.0..=1.15).contains(&p.alpha[i]));
            assert!((0.0..=1.0).contains(&p.beta[i]));
            assert!(p.pue[i] >= 1.05 && p.pue[i] <= 1.5);
        }
    }

    #[test]
    fn hourly_profile_spans_year() {
        let w = WorldCatalog::anchors_only(6);
        let loc = w.find("Nairobi").unwrap();
        let tmy = w.tmy(loc.id);
        let p = EnergyProfile::from_tmy_hourly(
            &tmy,
            &PvModel::default(),
            &Turbine::default(),
            &PueModel::new(),
        );
        assert_eq!(p.len(), 8760);
        assert_eq!(p.num_blocks(), 1);
        assert!((p.total_hours() - 8760.0).abs() < 1e-9);
        // Profile CF equals the annual aggregation on the same data.
        let cf = crate::capacity_factor::CapacityFactors::with_default_models(&tmy);
        assert!((p.solar_cf() - cf.solar).abs() < 1e-9);
        assert!((p.wind_cf() - cf.wind).abs() < 1e-9);
    }

    #[test]
    fn profile_cf_close_to_annual_cf() {
        // Representative days are a sample; CFs should be within a third of
        // the annual value for a temperate site.
        let w = WorldCatalog::anchors_only(6);
        let loc = w.find("Burke").unwrap();
        let tmy = w.tmy(loc.id);
        let annual = crate::capacity_factor::CapacityFactors::with_default_models(&tmy);
        let p = build();
        assert!(
            (p.wind_cf() - annual.wind).abs() / annual.wind < 0.5,
            "profile {} vs annual {}",
            p.wind_cf(),
            annual.wind
        );
        assert!(
            (p.solar_cf() - annual.solar).abs() / annual.solar < 0.5,
            "profile {} vs annual {}",
            p.solar_cf(),
            annual.solar
        );
    }
}
