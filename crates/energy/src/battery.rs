//! Battery storage ledger.
//!
//! The paper provisions lead-acid batteries ($200/kWh, 75% charge
//! efficiency, 4-year life) to store surplus green energy. The LP embeds
//! battery dynamics as constraints; this runtime ledger is used by the
//! GreenNebula emulation and enforces the same physics imperatively.

use serde::{Deserialize, Serialize};

/// A battery bank with finite capacity and lossy charging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_kwh: f64,
    level_kwh: f64,
    charge_efficiency: f64,
}

impl Battery {
    /// Paper-default charge efficiency.
    pub const DEFAULT_EFFICIENCY: f64 = 0.75;

    /// Creates an empty battery bank.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_kwh < 0` or `charge_efficiency ∉ (0, 1]`.
    pub fn new(capacity_kwh: f64, charge_efficiency: f64) -> Self {
        assert!(capacity_kwh >= 0.0, "negative capacity");
        assert!(
            charge_efficiency > 0.0 && charge_efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            capacity_kwh,
            level_kwh: 0.0,
            charge_efficiency,
        }
    }

    /// Creates a bank with the paper's 75% efficiency.
    pub fn with_default_efficiency(capacity_kwh: f64) -> Self {
        Self::new(capacity_kwh, Self::DEFAULT_EFFICIENCY)
    }

    /// Offers `kwh` of energy for charging; returns the amount actually
    /// *consumed from the source* (the stored amount is smaller by the
    /// charge efficiency).
    pub fn charge(&mut self, kwh: f64) -> f64 {
        if kwh <= 0.0 || self.capacity_kwh == 0.0 {
            return 0.0;
        }
        let storable = (self.capacity_kwh - self.level_kwh).max(0.0);
        let accepted_source = (kwh).min(storable / self.charge_efficiency);
        let target = self.level_kwh + accepted_source * self.charge_efficiency;
        if target > self.capacity_kwh {
            // The `storable / eff * eff` round-trip can land a few ulps
            // above capacity; clamp the level so `state_of_charge` never
            // exceeds 1, and report what the clamped fill actually
            // consumed so callers' energy books stay balanced.
            // …capped at the offer: rounding must never report consuming
            // more than was made available.
            let accepted = ((self.capacity_kwh - self.level_kwh) / self.charge_efficiency).min(kwh);
            self.level_kwh = self.capacity_kwh;
            accepted
        } else {
            self.level_kwh = target;
            accepted_source
        }
    }

    /// Requests `kwh` of energy; returns the amount actually delivered
    /// (discharge is lossless in the paper's model).
    pub fn discharge(&mut self, kwh: f64) -> f64 {
        if kwh <= 0.0 {
            return 0.0;
        }
        let delivered = kwh.min(self.level_kwh);
        self.level_kwh -= delivered;
        delivered
    }

    /// Shrinks (or restores) the usable capacity to `capacity_kwh` —
    /// lead-acid banks fade over their 4-year life, and fault-injection
    /// scenarios model that as stepwise derating. Negative values clamp to
    /// zero; stored energy above the new capacity is forfeited.
    pub fn derate_to(&mut self, capacity_kwh: f64) {
        self.capacity_kwh = capacity_kwh.max(0.0);
        self.level_kwh = self.level_kwh.min(self.capacity_kwh);
    }

    /// Current stored energy, kWh.
    pub fn level_kwh(&self) -> f64 {
        self.level_kwh
    }

    /// Capacity, kWh.
    pub fn capacity_kwh(&self) -> f64 {
        self.capacity_kwh
    }

    /// Fraction full, in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        if self.capacity_kwh == 0.0 {
            0.0
        } else {
            self.level_kwh / self.capacity_kwh
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_loses_a_quarter() {
        let mut b = Battery::with_default_efficiency(100.0);
        let consumed = b.charge(40.0);
        assert_eq!(consumed, 40.0);
        assert!((b.level_kwh() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn charge_stops_at_capacity() {
        let mut b = Battery::with_default_efficiency(30.0);
        let consumed = b.charge(1000.0);
        // Only 30/0.75 = 40 kWh of source energy is accepted.
        assert!((consumed - 40.0).abs() < 1e-12);
        assert!((b.level_kwh() - 30.0).abs() < 1e-12);
        assert_eq!(b.charge(10.0), 0.0);
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn discharge_capped_by_level() {
        let mut b = Battery::with_default_efficiency(100.0);
        b.charge(40.0); // 30 stored
        assert_eq!(b.discharge(10.0), 10.0);
        assert_eq!(b.discharge(100.0), 20.0);
        assert_eq!(b.discharge(1.0), 0.0);
        assert_eq!(b.level_kwh(), 0.0);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut b = Battery::with_default_efficiency(0.0);
        assert_eq!(b.charge(50.0), 0.0);
        assert_eq!(b.discharge(50.0), 0.0);
        assert_eq!(b.state_of_charge(), 0.0);
    }

    #[test]
    fn negative_requests_are_noops() {
        let mut b = Battery::with_default_efficiency(10.0);
        assert_eq!(b.charge(-5.0), 0.0);
        assert_eq!(b.discharge(-5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        Battery::new(10.0, 0.0);
    }

    #[test]
    fn invariant_level_within_bounds_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut b = Battery::with_default_efficiency(50.0);
        for _ in 0..10_000 {
            if rng.gen_bool(0.5) {
                b.charge(rng.gen_range(0.0..20.0));
            } else {
                b.discharge(rng.gen_range(0.0..20.0));
            }
            // Exact bounds: the post-charge clamp leaves no ulp overshoot.
            assert!(b.level_kwh() >= 0.0);
            assert!(b.level_kwh() <= b.capacity_kwh());
            assert!(b.state_of_charge() <= 1.0);
        }
    }

    #[test]
    fn derating_clamps_level_and_restores() {
        let mut b = Battery::with_default_efficiency(100.0);
        b.charge(80.0); // 60 stored
        b.derate_to(40.0);
        assert_eq!(b.capacity_kwh(), 40.0);
        assert_eq!(b.level_kwh(), 40.0, "overfull energy is forfeited");
        assert_eq!(b.state_of_charge(), 1.0);
        b.derate_to(100.0);
        assert_eq!(b.capacity_kwh(), 100.0);
        assert_eq!(b.level_kwh(), 40.0, "restoring capacity keeps the level");
        b.derate_to(-5.0);
        assert_eq!(b.capacity_kwh(), 0.0, "negative derate clamps to zero");
        assert_eq!(b.level_kwh(), 0.0);
    }

    #[test]
    fn near_full_charge_never_overshoots_capacity() {
        // Irrational-ish efficiency and repeated tiny top-ups drive the
        // `storable / eff * eff` round-trip error that used to push
        // `level_kwh` a few ulps past capacity.
        let mut b = Battery::new(10.0, 0.7300000000000001);
        for _ in 0..1_000 {
            b.charge(0.1 + f64::EPSILON);
        }
        assert!(b.level_kwh() <= b.capacity_kwh());
        assert!(b.state_of_charge() <= 1.0);
        assert!((b.level_kwh() - 10.0).abs() < 1e-9, "still fills up");
    }
}
