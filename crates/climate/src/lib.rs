//! Synthetic meteorological and economic data for green-datacenter siting.
//!
//! The paper instantiates its framework with US-DoE Typical Meteorological
//! Year (TMY) files for 1373 world locations, plus per-location land prices,
//! grid-electricity prices, and distances to power plants and network
//! backbones. None of those datasets ship with this repository, so this
//! crate synthesizes statistically equivalent ones, deterministically from a
//! seed:
//!
//! * [`solar`] — solar geometry and clear-sky irradiance.
//! * [`weather`] — stochastic hourly weather (temperature, cloud cover,
//!   wind, pressure) with realistic diurnal/seasonal/autocorrelation
//!   structure; [`weather::Tmy`] is one synthetic year.
//! * [`catalog`] — a world catalog of locations ([`catalog::WorldCatalog`])
//!   including the paper's named anchor sites (Table II/III) with their
//!   published attributes.
//! * [`economics`] — land/electricity prices and infrastructure distances.
//! * [`profiles`] — representative-day compression of a TMY year into
//!   weighted time slots for the optimization.
//! * [`geo`] — coordinates, distances, time zones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod economics;
pub mod geo;
pub mod profiles;
pub mod solar;
pub mod weather;

pub use catalog::{Location, LocationId, WorldCatalog};
pub use geo::LatLon;
pub use profiles::{ProfileConfig, WeatherProfile, WeatherSlot};
pub use weather::{ClimateParams, Tmy};

/// Hours in the synthetic year used throughout the workspace.
pub const HOURS_PER_YEAR: usize = 8760;
