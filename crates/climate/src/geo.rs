//! Coordinates, great-circle distances, and longitude-derived time zones.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A geographic coordinate in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude, degrees north (−90..=90).
    pub lat: f64,
    /// Longitude, degrees east (−180..=180).
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate, normalizing longitude into `(-180, 180]`.
    ///
    /// # Panics
    ///
    /// Panics if `lat` is outside `[-90, 90]` or not finite.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            lat.is_finite() && (-90.0..=90.0).contains(&lat),
            "bad latitude {lat}"
        );
        assert!(lon.is_finite(), "bad longitude {lon}");
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon == -180.0 {
            lon = 180.0;
        }
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Idealized UTC offset in hours derived from longitude (15° per hour).
    pub fn utc_offset_hours(&self) -> f64 {
        (self.lon / 15.0).round()
    }

    /// Fractional solar-time offset from UTC in hours (no rounding).
    pub fn solar_offset_hours(&self) -> f64 {
        self.lon / 15.0
    }

    /// `true` for southern-hemisphere coordinates.
    pub fn is_southern(&self) -> bool {
        self.lat < 0.0
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = if self.lat >= 0.0 { 'N' } else { 'S' };
        let ew = if self.lon >= 0.0 { 'E' } else { 'W' };
        write!(f, "{:.2}°{ns} {:.2}°{ew}", self.lat.abs(), self.lon.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = LatLon::new(40.0, -75.0);
        assert!(p.distance_km(&p) < 1e-9);
    }

    #[test]
    fn known_distance_barcelona_to_piscataway() {
        // The paper's own migration measurement pair.
        let barcelona = LatLon::new(41.39, 2.17);
        let piscataway = LatLon::new(40.55, -74.46);
        let d = barcelona.distance_km(&piscataway);
        assert!((d - 6150.0).abs() < 150.0, "got {d}");
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(0.0, 180.0);
        let d = a.distance_km(&b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn utc_offsets() {
        assert_eq!(LatLon::new(0.0, 0.0).utc_offset_hours(), 0.0);
        assert_eq!(LatLon::new(19.4, -99.1).utc_offset_hours(), -7.0); // Mexico City (solar)
        assert_eq!(LatLon::new(13.6, 144.9).utc_offset_hours(), 10.0); // Guam
        assert_eq!(LatLon::new(-1.3, 36.8).utc_offset_hours(), 2.0); // Nairobi (solar)
    }

    #[test]
    fn longitude_normalization() {
        assert_eq!(LatLon::new(0.0, 190.0).lon, -170.0);
        assert_eq!(LatLon::new(0.0, -190.0).lon, 170.0);
        assert_eq!(LatLon::new(0.0, -180.0).lon, 180.0);
    }

    #[test]
    #[should_panic(expected = "bad latitude")]
    fn rejects_bad_latitude() {
        LatLon::new(91.0, 0.0);
    }

    #[test]
    fn display_formats_hemispheres() {
        let s = LatLon::new(-17.8, 31.05).to_string();
        assert!(s.contains('S') && s.contains('E'));
    }

    #[test]
    fn distance_symmetry() {
        let a = LatLon::new(50.45, 30.52);
        let b = LatLon::new(44.27, -71.3);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }
}
