//! The world location catalog.
//!
//! [`WorldCatalog::synthetic`] reproduces the scale of the paper's dataset:
//! 1373 candidate locations world-wide, each with a climate description and
//! economic attributes. The catalog always contains the paper's named
//! *anchor* locations first — the sites of Table II and Table III — with
//! their published attributes (land price, electricity price, distances)
//! and climates tuned to land near their published capacity factors, so the
//! case studies can find them.

use crate::economics::Economics;
use crate::geo::LatLon;
use crate::weather::{ClimateParams, Tmy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Stable identifier of a location inside one catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(pub usize);

impl LocationId {
    /// Zero-based catalog index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A candidate datacenter location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Location {
    /// Catalog identifier.
    pub id: LocationId,
    /// Human-readable name ("Nairobi, Kenya" or "Site #0042").
    pub name: String,
    /// Geographic position.
    pub position: LatLon,
    /// Climate description used to synthesize weather.
    pub climate: ClimateParams,
    /// Economic attributes.
    pub econ: Economics,
    /// `true` for the paper's named Table II/III sites.
    pub anchor: bool,
}

/// The set of candidate locations for siting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldCatalog {
    locations: Vec<Location>,
    seed: u64,
}

/// Number of locations in the paper's dataset (and our default).
pub const PAPER_LOCATION_COUNT: usize = 1373;

impl WorldCatalog {
    /// Builds a synthetic world with `n` locations (anchors included and
    /// counted), deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the number of anchor locations.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let anchors = anchor_specs();
        assert!(
            n >= anchors.len(),
            "catalog needs at least {} locations",
            anchors.len()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut locations = Vec::with_capacity(n);
        for spec in anchors {
            let id = LocationId(locations.len());
            locations.push(spec.into_location(id));
        }
        while locations.len() < n {
            let id = LocationId(locations.len());
            locations.push(generic_location(&mut rng, id));
        }
        WorldCatalog { locations, seed }
    }

    /// The paper-sized world: [`PAPER_LOCATION_COUNT`] locations.
    pub fn paper_scale(seed: u64) -> Self {
        Self::synthetic(PAPER_LOCATION_COUNT, seed)
    }

    /// A catalog holding only the named anchor locations (fast tests).
    pub fn anchors_only(seed: u64) -> Self {
        Self::synthetic(anchor_specs().len(), seed)
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Iterates over all locations.
    pub fn iter(&self) -> impl Iterator<Item = &Location> {
        self.locations.iter()
    }

    /// Looks a location up by id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this catalog.
    pub fn get(&self, id: LocationId) -> &Location {
        &self.locations[id.index()]
    }

    /// Finds a location by (case-insensitive) name substring.
    pub fn find(&self, name: &str) -> Option<&Location> {
        let needle = name.to_lowercase();
        self.locations
            .iter()
            .find(|l| l.name.to_lowercase().contains(&needle))
    }

    /// Synthesizes the typical meteorological year for a location.
    ///
    /// Deterministic per `(catalog seed, location id)`.
    pub fn tmy(&self, id: LocationId) -> Tmy {
        let loc = self.get(id);
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.index() as u64 + 1);
        Tmy::synthesize(&loc.climate, loc.position, seed)
    }

    /// The catalog seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

struct AnchorSpec {
    name: &'static str,
    lat: f64,
    lon: f64,
    climate: ClimateParams,
    econ: Economics,
}

impl AnchorSpec {
    fn into_location(self, id: LocationId) -> Location {
        Location {
            id,
            name: self.name.to_string(),
            position: LatLon::new(self.lat, self.lon),
            climate: self.climate,
            econ: self.econ,
            anchor: true,
        }
    }
}

fn econ(land: f64, elec_mwh: f64, d_pow: f64, d_net: f64, plant_mw: f64) -> Economics {
    Economics {
        land_usd_per_m2: land,
        elec_usd_per_kwh: elec_mwh / 1000.0,
        dist_power_km: d_pow,
        dist_network_km: d_net,
        near_plant_cap_kw: plant_mw * 1000.0,
    }
}

/// The paper's named locations (Table II and Table III) with published
/// economics and climates tuned toward the published capacity factors.
fn anchor_specs() -> Vec<AnchorSpec> {
    vec![
        AnchorSpec {
            // Table II "Brown" anchor: cheap grid power, close to
            // infrastructure, modest renewables.
            name: "Kiev, Ukraine",
            lat: 50.45,
            lon: 30.52,
            climate: ClimateParams {
                t_mean_c: 8.4,
                t_seasonal_amp_c: 12.5,
                t_diurnal_amp_c: 4.0,
                t_noise_c: 2.2,
                cloud_mean: 0.62,
                cloud_variability: 0.28,
                wind_scale_ms: 4.4,
                wind_shape: 2.0,
                wind_seasonal: 0.20,
                elevation_m: 179.0,
            },
            econ: econ(22.0, 30.0, 22.0, 7.0, 2200.0),
        },
        AnchorSpec {
            // Table II "Solar" anchor, 22.4% solar CF, cheap land.
            name: "Harare, Zimbabwe",
            lat: -17.83,
            lon: 31.05,
            climate: ClimateParams {
                t_mean_c: 18.0,
                t_seasonal_amp_c: 4.5,
                t_diurnal_amp_c: 7.0,
                t_noise_c: 1.8,
                cloud_mean: 0.26,
                cloud_variability: 0.25,
                wind_scale_ms: 3.4,
                wind_shape: 2.1,
                wind_seasonal: 0.08,
                elevation_m: 1490.0,
            },
            econ: econ(14.7, 98.0, 400.0, 390.0, 500.0),
        },
        AnchorSpec {
            // Table II "Solar" anchor, 20.9% solar CF, well connected.
            name: "Nairobi, Kenya",
            lat: -1.29,
            lon: 36.82,
            climate: ClimateParams {
                t_mean_c: 17.6,
                t_seasonal_amp_c: 1.8,
                t_diurnal_amp_c: 6.5,
                t_noise_c: 1.6,
                cloud_mean: 0.36,
                cloud_variability: 0.26,
                wind_scale_ms: 3.9,
                wind_shape: 2.0,
                wind_seasonal: 0.05,
                elevation_m: 1795.0,
            },
            econ: econ(14.7, 70.0, 30.0, 25.0, 500.0),
        },
        AnchorSpec {
            // Table II "Wind" anchor, 55.6% wind CF, cold summit, pricey
            // land, far from the grid.
            name: "Mount Washington, NH, USA",
            lat: 44.27,
            lon: -71.30,
            climate: ClimateParams {
                t_mean_c: -2.5,
                t_seasonal_amp_c: 12.0,
                t_diurnal_amp_c: 3.0,
                t_noise_c: 2.5,
                cloud_mean: 0.58,
                cloud_variability: 0.28,
                wind_scale_ms: 14.2,
                wind_shape: 1.9,
                wind_seasonal: 0.22,
                elevation_m: 1916.0,
            },
            econ: econ(947.0, 126.0, 345.0, 71.0, 1000.0),
        },
        AnchorSpec {
            // Table II "Wind" anchor, 20.9% wind CF, lakefront, backbone
            // 3 km away.
            name: "Burke Lakefront, OH, USA",
            lat: 41.52,
            lon: -81.68,
            climate: ClimateParams {
                t_mean_c: 10.4,
                t_seasonal_amp_c: 12.5,
                t_diurnal_amp_c: 4.5,
                t_noise_c: 2.2,
                cloud_mean: 0.55,
                cloud_variability: 0.28,
                wind_scale_ms: 7.1,
                wind_shape: 2.0,
                wind_seasonal: 0.18,
                elevation_m: 178.0,
            },
            econ: econ(329.0, 58.0, 409.0, 3.0, 1000.0),
        },
        AnchorSpec {
            // Table III site (100% green, no storage).
            name: "Mexico City, Mexico",
            lat: 19.43,
            lon: -99.13,
            climate: ClimateParams {
                t_mean_c: 16.5,
                t_seasonal_amp_c: 3.0,
                t_diurnal_amp_c: 6.0,
                t_noise_c: 1.8,
                cloud_mean: 0.38,
                cloud_variability: 0.26,
                wind_scale_ms: 3.2,
                wind_shape: 2.0,
                wind_seasonal: 0.06,
                elevation_m: 2240.0,
            },
            econ: econ(95.0, 90.0, 45.0, 20.0, 1000.0),
        },
        AnchorSpec {
            // Table III site: tropical Pacific, steady trade winds.
            name: "Andersen, Guam",
            lat: 13.58,
            lon: 144.93,
            climate: ClimateParams {
                t_mean_c: 27.0,
                t_seasonal_amp_c: 1.5,
                t_diurnal_amp_c: 3.5,
                t_noise_c: 1.2,
                cloud_mean: 0.45,
                cloud_variability: 0.26,
                wind_scale_ms: 6.4,
                wind_shape: 2.2,
                wind_seasonal: 0.05,
                elevation_m: 185.0,
            },
            econ: econ(60.0, 120.0, 30.0, 40.0, 250.0),
        },
        AnchorSpec {
            // Fig. 7 case-study companion site (Grissom, Indiana): decent
            // wind, cheap midwest grid power.
            name: "Grissom, IN, USA",
            lat: 40.65,
            lon: -86.15,
            climate: ClimateParams {
                t_mean_c: 10.0,
                t_seasonal_amp_c: 13.0,
                t_diurnal_amp_c: 5.0,
                t_noise_c: 2.2,
                cloud_mean: 0.52,
                cloud_variability: 0.28,
                wind_scale_ms: 6.3,
                wind_shape: 2.0,
                wind_seasonal: 0.18,
                elevation_m: 247.0,
            },
            econ: econ(150.0, 60.0, 100.0, 30.0, 2000.0),
        },
    ]
}

/// Synthesizes a generic (non-anchor) location.
fn generic_location<R: Rng>(rng: &mut R, id: LocationId) -> Location {
    // Latitude concentrated where the paper's dataset is dense (North
    // America, Europe, Asia) but covering the whole habitable range.
    let lat: f64 = if rng.gen_bool(0.7) {
        let base: f64 = rng.gen_range(20.0..60.0);
        if rng.gen_bool(0.85) {
            base
        } else {
            -base
        }
    } else {
        rng.gen_range(-55.0..65.0)
    };
    let lon = rng.gen_range(-180.0..180.0);
    let position = LatLon::new(lat, lon);

    // Mountain/ridge/coastal sites are rarer but windier and cooler.
    let windy_site = rng.gen_bool(0.08);
    let elevation_m: f64 = if windy_site {
        rng.gen_range(300.0..2500.0)
    } else {
        250.0 * -(1.0 - rng.gen_range(0.0..1.0f64)).ln()
    }
    .min(3000.0);

    let t_mean_c = 27.0 - 0.50 * lat.abs() - 6.5 * elevation_m / 1000.0 + rng.gen_range(-2.5..2.5);
    let dryness: f64 = rng.gen_range(0.0..1.0);
    let cloud_mean = (0.18 + 0.5 * (1.0 - dryness) + 0.0025 * lat.abs()).clamp(0.1, 0.85);
    let wind_scale_ms = {
        let base = (4.6f64.ln() + rng.gen_range(-0.4..0.4)).exp() * (1.0 + 0.004 * lat.abs());
        if windy_site {
            base * rng.gen_range(1.6..2.6)
        } else {
            base
        }
    };

    let climate = ClimateParams {
        t_mean_c,
        t_seasonal_amp_c: (2.0 + 0.28 * lat.abs() * rng.gen_range(0.7..1.3)).min(22.0),
        t_diurnal_amp_c: rng.gen_range(3.0..8.0) * (0.6 + 0.6 * dryness),
        t_noise_c: rng.gen_range(1.2..2.8),
        cloud_mean,
        cloud_variability: rng.gen_range(0.20..0.32),
        wind_scale_ms,
        wind_shape: rng.gen_range(1.8..2.3),
        wind_seasonal: rng.gen_range(0.05..0.25),
        elevation_m,
    };

    // Development index: mid-latitudes more developed, correlates with land
    // price and infrastructure proximity. Windy ridge/coastal sites are
    // remote: far from transmission lines and backbones (the paper's best
    // wind site is 345 km from the grid), which is what keeps green
    // networks a net cost rather than free money.
    let development = ((0.75 - (lat.abs() - 40.0).abs() / 60.0) + rng.gen_range(-0.25..0.25))
        .clamp(0.02, 1.0)
        * if windy_site { 0.25 } else { 1.0 };
    let mut econ = Economics::synthesize(rng, development);
    if windy_site {
        econ.dist_power_km = (econ.dist_power_km * rng.gen_range(1.5..3.0)).min(800.0);
        econ.dist_network_km = (econ.dist_network_km * rng.gen_range(1.5..3.0)).min(800.0);
    }

    Location {
        id,
        name: format!("Site #{:04}", id.index()),
        position,
        climate,
        econ,
        anchor: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_1373_locations() {
        let w = WorldCatalog::paper_scale(11);
        assert_eq!(w.len(), PAPER_LOCATION_COUNT);
        assert!(!w.is_empty());
    }

    #[test]
    fn anchors_come_first_and_are_findable() {
        let w = WorldCatalog::synthetic(50, 3);
        assert!(w.get(LocationId(0)).anchor);
        for name in [
            "Kiev",
            "Harare",
            "Nairobi",
            "Mount Washington",
            "Burke",
            "Mexico City",
            "Guam",
            "Grissom",
        ] {
            assert!(w.find(name).is_some(), "missing anchor {name}");
        }
        assert!(w.find("Atlantis").is_none());
    }

    #[test]
    fn deterministic_catalogs() {
        let a = WorldCatalog::synthetic(100, 5);
        let b = WorldCatalog::synthetic(100, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.econ, y.econ);
        }
        let c = WorldCatalog::synthetic(100, 6);
        let moved = a
            .iter()
            .zip(c.iter())
            .filter(|(x, y)| x.position != y.position)
            .count();
        assert!(moved > 50, "different seeds should move generic sites");
    }

    #[test]
    fn tmy_is_deterministic_per_location() {
        let w = WorldCatalog::anchors_only(9);
        let t1 = w.tmy(LocationId(1));
        let t2 = w.tmy(LocationId(1));
        assert_eq!(t1.temp_c, t2.temp_c);
        let t3 = w.tmy(LocationId(2));
        assert_ne!(t1.temp_c, t3.temp_c);
    }

    #[test]
    fn mount_washington_is_cold_and_windy() {
        let w = WorldCatalog::anchors_only(4);
        let mw = w.find("Mount Washington").unwrap();
        let tmy = w.tmy(mw.id);
        assert!(tmy.mean_temp_c() < 3.0, "mean temp {}", tmy.mean_temp_c());
        assert!(
            tmy.mean_wind_ms() > 10.0,
            "mean wind {}",
            tmy.mean_wind_ms()
        );
    }

    #[test]
    fn harare_is_sunny() {
        let w = WorldCatalog::anchors_only(4);
        let h = w.find("Harare").unwrap();
        let tmy = w.tmy(h.id);
        assert!(
            tmy.mean_ghi_wm2() > 220.0,
            "mean ghi {}",
            tmy.mean_ghi_wm2()
        );
    }

    #[test]
    fn generic_sites_have_plausible_climates() {
        let w = WorldCatalog::synthetic(300, 8);
        for loc in w.iter().filter(|l| !l.anchor) {
            let c = &loc.climate;
            assert!(c.t_mean_c > -30.0 && c.t_mean_c < 40.0, "{}", loc.name);
            assert!(c.wind_scale_ms > 1.0 && c.wind_scale_ms < 30.0);
            assert!((0.05..=0.9).contains(&c.cloud_mean));
        }
    }

    #[test]
    #[should_panic(expected = "catalog needs at least")]
    fn too_small_catalog_panics() {
        WorldCatalog::synthetic(2, 0);
    }
}
