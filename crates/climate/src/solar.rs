//! Solar geometry and clear-sky irradiance.
//!
//! The synthetic TMY needs physically plausible solar input: zero at night,
//! peaking at solar noon, modulated by season and latitude. We use the
//! standard Cooper declination formula and the Haurwitz clear-sky model
//! (global horizontal irradiance as a function of the solar zenith angle),
//! which is accurate to a few percent — far inside the noise introduced by
//! the stochastic cloud process layered on top.

/// Solar constant adjusted to ground-level clear-sky peak (Haurwitz), W/m².
pub const HAURWITZ_PEAK: f64 = 1098.0;

/// Solar declination in radians for a day of year (1..=365), Cooper (1969).
pub fn declination(day_of_year: f64) -> f64 {
    (23.45f64).to_radians() * ((360.0 / 365.0) * (284.0 + day_of_year)).to_radians().sin()
}

/// Hour angle in radians for local solar time in hours (0..24); zero at
/// solar noon, negative in the morning.
pub fn hour_angle(solar_time_h: f64) -> f64 {
    ((solar_time_h - 12.0) * 15.0).to_radians()
}

/// Cosine of the solar zenith angle for latitude (degrees), day of year, and
/// local solar time (hours). Clamped at 0 below the horizon.
pub fn cos_zenith(lat_deg: f64, day_of_year: f64, solar_time_h: f64) -> f64 {
    let phi = lat_deg.to_radians();
    let delta = declination(day_of_year);
    let h = hour_angle(solar_time_h);
    (phi.sin() * delta.sin() + phi.cos() * delta.cos() * h.cos()).max(0.0)
}

/// Clear-sky global horizontal irradiance (W/m²), Haurwitz (1945).
pub fn clear_sky_ghi(cos_zenith: f64) -> f64 {
    if cos_zenith <= 0.0 {
        0.0
    } else {
        HAURWITZ_PEAK * cos_zenith * (-0.057 / cos_zenith).exp()
    }
}

/// Cloud attenuation of clear-sky GHI, Kasten & Czeplak (1980):
/// `GHI = GHI_clear · (1 − 0.75·n^3.4)` with cloud fraction `n ∈ [0, 1]`.
pub fn cloud_attenuation(cloud_fraction: f64) -> f64 {
    let n = cloud_fraction.clamp(0.0, 1.0);
    1.0 - 0.75 * n.powf(3.4)
}

/// Daylight duration in hours for a latitude and day of year.
pub fn day_length_hours(lat_deg: f64, day_of_year: f64) -> f64 {
    let phi = lat_deg.to_radians();
    let delta = declination(day_of_year);
    let cos_h0 = -phi.tan() * delta.tan();
    if cos_h0 <= -1.0 {
        24.0 // polar day
    } else if cos_h0 >= 1.0 {
        0.0 // polar night
    } else {
        2.0 * cos_h0.acos().to_degrees() / 15.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declination_extremes() {
        // Summer solstice ~ +23.45°, winter ~ −23.45°.
        let summer = declination(172.0).to_degrees();
        let winter = declination(355.0).to_degrees();
        assert!((summer - 23.45).abs() < 0.5, "summer {summer}");
        assert!((winter + 23.45).abs() < 0.5, "winter {winter}");
    }

    #[test]
    fn equinox_day_length_is_twelve_hours_everywhere() {
        for lat in [-60.0, -30.0, 0.0, 30.0, 60.0] {
            let d = day_length_hours(lat, 80.0); // ~Mar 21
            assert!((d - 12.0).abs() < 0.3, "lat {lat}: {d}");
        }
    }

    #[test]
    fn polar_night_and_day() {
        assert_eq!(day_length_hours(80.0, 355.0), 0.0);
        assert_eq!(day_length_hours(80.0, 172.0), 24.0);
    }

    #[test]
    fn night_has_zero_irradiance() {
        let cz = cos_zenith(40.0, 100.0, 0.0); // midnight
        assert_eq!(cz, 0.0);
        assert_eq!(clear_sky_ghi(cz), 0.0);
    }

    #[test]
    fn noon_peaks_at_low_latitude() {
        let eq = clear_sky_ghi(cos_zenith(0.0, 80.0, 12.0));
        let mid = clear_sky_ghi(cos_zenith(45.0, 80.0, 12.0));
        let high = clear_sky_ghi(cos_zenith(70.0, 80.0, 12.0));
        assert!(eq > mid && mid > high, "{eq} {mid} {high}");
        assert!(eq > 950.0 && eq < HAURWITZ_PEAK);
    }

    #[test]
    fn cloud_attenuation_bounds() {
        assert_eq!(cloud_attenuation(0.0), 1.0);
        assert!((cloud_attenuation(1.0) - 0.25).abs() < 1e-12);
        for i in 0..=10 {
            let n = i as f64 / 10.0;
            let a = cloud_attenuation(n);
            assert!((0.25..=1.0).contains(&a));
        }
        // Out-of-range input is clamped, not propagated.
        assert_eq!(cloud_attenuation(-1.0), 1.0);
        assert!((cloud_attenuation(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn morning_symmetry_around_noon() {
        let am = cos_zenith(35.0, 120.0, 9.0);
        let pm = cos_zenith(35.0, 120.0, 15.0);
        assert!((am - pm).abs() < 1e-12);
    }

    #[test]
    fn southern_hemisphere_summer_in_january() {
        // Harare (17.8°S): January noon sun is higher than July noon sun.
        let jan = cos_zenith(-17.8, 15.0, 12.0);
        let jul = cos_zenith(-17.8, 196.0, 12.0);
        assert!(jan > jul);
    }
}
