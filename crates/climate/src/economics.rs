//! Per-location economic attributes.
//!
//! The paper gathers land prices from real-estate portals, grid prices from
//! government portals, and distances to the nearest ≥100 MW power plant and
//! IPv6 backbone point from public maps. This module synthesizes the same
//! attributes with matching ranges (land $5–$1000/m², electricity averaging
//! ~$90/MWh, line distances up to a few hundred km).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Economic attributes of a candidate location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Economics {
    /// Industrial land price, $/m².
    pub land_usd_per_m2: f64,
    /// Grid ("brown") electricity price, $/kWh.
    pub elec_usd_per_kwh: f64,
    /// Distance to the nearest transmission line / brown power plant, km.
    pub dist_power_km: f64,
    /// Distance to the nearest network backbone connection point, km.
    pub dist_network_km: f64,
    /// Capacity of the nearest brown power plant, kW.
    pub near_plant_cap_kw: f64,
}

impl Economics {
    /// Synthesizes economics for a generic location.
    ///
    /// `development` in `[0, 1]` raises land price and plant/backbone
    /// proximity (developed areas are expensive but well connected).
    pub fn synthesize<R: Rng>(rng: &mut R, development: f64) -> Self {
        let d = development.clamp(0.0, 1.0);
        // Land: log-scale from ~$8 (rural) to ~$900+ (metro).
        let land = (8.0f64.ln() + 3.4 * d + rng.gen_range(-0.5..0.5)).exp();
        // Electricity: $30–$250 per MWh, mean near $90.
        let elec_mwh = 30.0 + 120.0 * rng.gen_range(0.0..1.0f64).powf(1.6) + 30.0 * d;
        // Developed regions are closer to grid and backbone.
        let reach = 1.0 - 0.75 * d;
        let dist_power = (1.0 + sample_exp(rng, 140.0) * reach).min(800.0);
        let dist_network = (1.0 + sample_exp(rng, 90.0) * reach).min(800.0);
        let plant_mw = [100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0];
        let near_plant_cap_kw = plant_mw[rng.gen_range(0..plant_mw.len())] * 1000.0;
        Economics {
            land_usd_per_m2: land,
            elec_usd_per_kwh: elec_mwh / 1000.0,
            dist_power_km: dist_power,
            dist_network_km: dist_network,
            near_plant_cap_kw,
        }
    }
}

fn sample_exp<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ranges_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for i in 0..500 {
            let d = (i % 11) as f64 / 10.0;
            let e = Economics::synthesize(&mut rng, d);
            assert!(e.land_usd_per_m2 > 3.0 && e.land_usd_per_m2 < 1500.0);
            assert!(e.elec_usd_per_kwh >= 0.03 && e.elec_usd_per_kwh <= 0.25);
            assert!(e.dist_power_km >= 1.0 && e.dist_power_km <= 800.0);
            assert!(e.dist_network_km >= 1.0 && e.dist_network_km <= 800.0);
            assert!(e.near_plant_cap_kw >= 100_000.0);
        }
    }

    #[test]
    fn development_raises_land_price() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rural: f64 = (0..200)
            .map(|_| Economics::synthesize(&mut rng, 0.1).land_usd_per_m2)
            .sum::<f64>()
            / 200.0;
        let metro: f64 = (0..200)
            .map(|_| Economics::synthesize(&mut rng, 0.9).land_usd_per_m2)
            .sum::<f64>()
            / 200.0;
        assert!(metro > rural * 4.0, "metro {metro} rural {rural}");
    }

    #[test]
    fn mean_electricity_near_90_per_mwh() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mean: f64 = (0..2000)
            .map(|i| Economics::synthesize(&mut rng, (i % 10) as f64 / 10.0).elec_usd_per_kwh)
            .sum::<f64>()
            / 2000.0;
        assert!((0.07..0.11).contains(&mean), "mean {mean}");
    }
}
