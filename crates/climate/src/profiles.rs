//! Representative-day compression of a TMY year.
//!
//! The paper's optimization covers a whole year of hourly weather, which
//! makes the LP huge. Standard capacity-expansion practice — and our
//! documented substitution — is to optimize over a handful of
//! *representative days*: each season contributes `days_per_season` sampled
//! calendar days, and every hour-slot carries a weight (hours of the real
//! year it stands for). Battery dispatch is treated as cyclic within each
//! representative day by the formulation layer.
//!
//! The selected calendar days depend only on [`ProfileConfig`], **not** on
//! the location, so every location in a network problem shares the same
//! slot clock — a requirement for the coupling constraints.

use crate::weather::Tmy;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Hours represented by one slot must total the full year.
pub const YEAR_HOURS: f64 = 8760.0;

/// Season boundaries in calendar days (quarters of the 365-day year).
const SEASON_BOUNDS: [(usize, usize); 4] = [(0, 91), (91, 182), (182, 273), (273, 365)];

/// Configuration of representative-day selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Representative days sampled per season (1 = fastest, 2–3 typical).
    pub days_per_season: usize,
    /// Seed for the (deterministic) day sampling.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            days_per_season: 2,
            seed: 0x5EED,
        }
    }
}

impl ProfileConfig {
    /// A minimal single-day-per-season profile (96 slots) for fast tests.
    pub fn coarse() -> Self {
        Self {
            days_per_season: 1,
            ..Self::default()
        }
    }

    /// The calendar days (0-based) selected by this configuration, in
    /// chronological order. Identical for every location.
    pub fn days(&self) -> Vec<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut days = Vec::with_capacity(4 * self.days_per_season);
        for (lo, hi) in SEASON_BOUNDS {
            let mut chosen = Vec::with_capacity(self.days_per_season);
            while chosen.len() < self.days_per_season {
                let d = rng.gen_range(lo..hi);
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }
            chosen.sort_unstable();
            days.extend(chosen);
        }
        days
    }

    /// Number of hour slots this configuration produces.
    pub fn num_slots(&self) -> usize {
        4 * self.days_per_season * 24
    }
}

/// One weighted hour of weather.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherSlot {
    /// Dry-bulb temperature, °C.
    pub temp_c: f64,
    /// Global horizontal irradiance, W/m².
    pub ghi_wm2: f64,
    /// Wind speed, m/s.
    pub wind_ms: f64,
    /// Air pressure, kPa.
    pub pressure_kpa: f64,
    /// Hours of the real year this slot represents.
    pub weight_hours: f64,
}

/// A location's weather compressed onto the shared slot clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherProfile {
    slots: Vec<WeatherSlot>,
}

impl WeatherProfile {
    /// Extracts the representative-day slots of `config` from a TMY year.
    pub fn from_tmy(tmy: &Tmy, config: &ProfileConfig) -> Self {
        let days = config.days();
        let mut slots = Vec::with_capacity(days.len() * 24);
        for (i, &day) in days.iter().enumerate() {
            let season = i / config.days_per_season;
            let (lo, hi) = SEASON_BOUNDS[season];
            let weight = (hi - lo) as f64 / config.days_per_season as f64;
            for h in 0..24 {
                let idx = day * 24 + h;
                slots.push(WeatherSlot {
                    temp_c: tmy.temp_c[idx],
                    ghi_wm2: tmy.ghi_wm2[idx],
                    wind_ms: tmy.wind_ms[idx],
                    pressure_kpa: tmy.pressure_kpa[idx],
                    weight_hours: weight,
                });
            }
        }
        WeatherProfile { slots }
    }

    /// The slots in chronological order.
    pub fn slots(&self) -> &[WeatherSlot] {
        &self.slots
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of representative days (each day is 24 consecutive slots).
    pub fn num_days(&self) -> usize {
        self.slots.len() / 24
    }

    /// The representative day a slot belongs to.
    pub fn day_of_slot(&self, slot: usize) -> usize {
        slot / 24
    }

    /// Total hours represented (should equal the year).
    pub fn total_weight_hours(&self) -> f64 {
        self.slots.iter().map(|s| s.weight_hours).sum()
    }

    /// Weighted annual mean of a per-slot quantity.
    pub fn weighted_mean<F: Fn(&WeatherSlot) -> f64>(&self, f: F) -> f64 {
        let total = self.total_weight_hours();
        if total == 0.0 {
            return 0.0;
        }
        self.slots
            .iter()
            .map(|s| f(s) * s.weight_hours)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::LatLon;
    use crate::weather::ClimateParams;

    fn tmy() -> Tmy {
        Tmy::synthesize(&ClimateParams::default(), LatLon::new(40.0, -75.0), 42)
    }

    #[test]
    fn weights_cover_the_year() {
        for dps in 1..=3 {
            let cfg = ProfileConfig {
                days_per_season: dps,
                seed: 1,
            };
            let p = WeatherProfile::from_tmy(&tmy(), &cfg);
            assert_eq!(p.len(), cfg.num_slots());
            assert!(
                (p.total_weight_hours() - YEAR_HOURS).abs() < 1e-6,
                "dps {dps}: {}",
                p.total_weight_hours()
            );
        }
    }

    #[test]
    fn day_selection_is_deterministic_and_seasonal() {
        let cfg = ProfileConfig::default();
        let d1 = cfg.days();
        let d2 = cfg.days();
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 8);
        // Two days per quarter.
        for (i, (lo, hi)) in SEASON_BOUNDS.iter().enumerate() {
            for k in 0..2 {
                let d = d1[i * 2 + k];
                assert!(d >= *lo && d < *hi, "day {d} outside season {i}");
            }
        }
    }

    #[test]
    fn different_seeds_pick_different_days() {
        let a = ProfileConfig {
            days_per_season: 2,
            seed: 1,
        }
        .days();
        let b = ProfileConfig {
            days_per_season: 2,
            seed: 2,
        }
        .days();
        assert_ne!(a, b);
    }

    #[test]
    fn profile_copies_tmy_hours_verbatim() {
        let cfg = ProfileConfig::coarse();
        let t = tmy();
        let p = WeatherProfile::from_tmy(&t, &cfg);
        let days = cfg.days();
        for (i, &day) in days.iter().enumerate() {
            for h in 0..24 {
                let s = &p.slots()[i * 24 + h];
                assert_eq!(s.ghi_wm2, t.ghi_wm2[day * 24 + h]);
                assert_eq!(s.wind_ms, t.wind_ms[day * 24 + h]);
            }
        }
    }

    #[test]
    fn weighted_mean_approximates_annual_mean() {
        // With several sampled days the profile mean should be in the same
        // ballpark as the full-year mean (it is a statistical sample).
        let cfg = ProfileConfig {
            days_per_season: 3,
            seed: 9,
        };
        let t = tmy();
        let p = WeatherProfile::from_tmy(&t, &cfg);
        let annual = t.mean_ghi_wm2();
        let sampled = p.weighted_mean(|s| s.ghi_wm2);
        assert!(
            (sampled - annual).abs() / annual < 0.35,
            "annual {annual}, sampled {sampled}"
        );
    }

    #[test]
    fn day_of_slot_blocks() {
        let cfg = ProfileConfig::default();
        let p = WeatherProfile::from_tmy(&tmy(), &cfg);
        assert_eq!(p.num_days(), 8);
        assert_eq!(p.day_of_slot(0), 0);
        assert_eq!(p.day_of_slot(23), 0);
        assert_eq!(p.day_of_slot(24), 1);
        assert_eq!(p.day_of_slot(191), 7);
    }
}
