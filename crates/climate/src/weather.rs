//! Stochastic synthesis of a Typical Meteorological Year.
//!
//! A [`Tmy`] is one year of hourly weather — temperature, global horizontal
//! irradiance, wind speed, and air pressure — generated deterministically
//! from a seed and a set of [`ClimateParams`]. The processes mirror the
//! structure real TMY data exhibits:
//!
//! * temperature = seasonal cycle (hemisphere-aware) + diurnal cycle
//!   (peaking mid-afternoon solar time) + AR(1) noise;
//! * irradiance = Haurwitz clear-sky modulated by an AR(1) cloud process
//!   through the Kasten–Czeplak attenuation;
//! * wind = Weibull marginal with AR(1) temporal correlation (multi-day
//!   lulls and storms) and a winter-peaking seasonal factor;
//! * pressure = barometric formula at the site elevation.
//!
//! All series are indexed by **UTC hour of the year**, so different
//! locations in one simulation share a clock; local solar time is derived
//! from longitude internally.

use crate::geo::LatLon;
use crate::solar;
use crate::HOURS_PER_YEAR;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Climate description of a location, the input to TMY synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClimateParams {
    /// Annual mean temperature, °C.
    pub t_mean_c: f64,
    /// Half peak-to-trough seasonal temperature swing, °C.
    pub t_seasonal_amp_c: f64,
    /// Half peak-to-trough diurnal temperature swing, °C.
    pub t_diurnal_amp_c: f64,
    /// Standard deviation of the AR(1) temperature noise, °C.
    pub t_noise_c: f64,
    /// Mean cloud fraction (0 = always clear, 1 = overcast).
    pub cloud_mean: f64,
    /// Amplitude of cloud fluctuation around the mean (0..~0.5).
    pub cloud_variability: f64,
    /// Weibull scale of hourly wind speed, m/s.
    pub wind_scale_ms: f64,
    /// Weibull shape of hourly wind speed (≈2 for most sites).
    pub wind_shape: f64,
    /// Relative winter-over-summer wind strengthening (0..~0.4).
    pub wind_seasonal: f64,
    /// Site elevation above sea level, metres.
    pub elevation_m: f64,
}

impl Default for ClimateParams {
    fn default() -> Self {
        Self {
            t_mean_c: 12.0,
            t_seasonal_amp_c: 9.0,
            t_diurnal_amp_c: 4.5,
            t_noise_c: 2.0,
            cloud_mean: 0.45,
            cloud_variability: 0.30,
            wind_scale_ms: 5.5,
            wind_shape: 2.0,
            wind_seasonal: 0.15,
            elevation_m: 120.0,
        }
    }
}

/// One synthetic Typical Meteorological Year of hourly data (UTC-indexed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tmy {
    /// Dry-bulb temperature, °C.
    pub temp_c: Vec<f64>,
    /// Global horizontal irradiance, W/m².
    pub ghi_wm2: Vec<f64>,
    /// Wind speed at hub height, m/s.
    pub wind_ms: Vec<f64>,
    /// Station air pressure, kPa.
    pub pressure_kpa: Vec<f64>,
}

/// Hourly AR(1) persistence of the temperature noise.
const TEMP_RHO: f64 = 0.95;
/// Hourly AR(1) persistence of the cloud process.
const CLOUD_RHO: f64 = 0.93;
/// Hourly AR(1) persistence of wind (lulls last days).
const WIND_RHO: f64 = 0.985;
/// Day of year of peak warmth in the northern hemisphere.
const NORTH_PEAK_DOY: f64 = 197.0;

impl Tmy {
    /// Synthesizes a year of weather for a site.
    ///
    /// Deterministic: the same `(params, position, seed)` triple always
    /// produces the same year.
    pub fn synthesize(params: &ClimateParams, position: LatLon, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = HOURS_PER_YEAR;
        let mut temp_c = Vec::with_capacity(n);
        let mut ghi_wm2 = Vec::with_capacity(n);
        let mut wind_ms = Vec::with_capacity(n);
        let mut pressure_kpa = Vec::with_capacity(n);

        let solar_offset = position.solar_offset_hours();
        let peak_doy = if position.is_southern() {
            (NORTH_PEAK_DOY + 182.5) % 365.0
        } else {
            NORTH_PEAK_DOY
        };

        // AR(1) states (stationary start).
        let mut z_temp = rng.gen_range(-1.0..1.0);
        let mut z_cloud = rng.gen_range(-1.0..1.0);
        let mut z_wind = rng.gen_range(-1.0..1.0);
        let t_innov = (1.0 - TEMP_RHO * TEMP_RHO).sqrt();
        let c_innov = (1.0 - CLOUD_RHO * CLOUD_RHO).sqrt();
        let w_innov = (1.0 - WIND_RHO * WIND_RHO).sqrt();

        let base_pressure = 101.325 * (1.0 - 2.25577e-5 * params.elevation_m).powf(5.25588);

        for h in 0..n {
            let tt = h as f64 + solar_offset;
            let doy = (tt / 24.0).rem_euclid(365.0) + 1.0;
            let solar_h = tt.rem_euclid(24.0);

            z_temp = TEMP_RHO * z_temp + t_innov * gauss(&mut rng);
            z_cloud = CLOUD_RHO * z_cloud + c_innov * gauss(&mut rng);
            z_wind = WIND_RHO * z_wind + w_innov * gauss(&mut rng);

            // Temperature.
            let seasonal =
                params.t_seasonal_amp_c * (std::f64::consts::TAU * (doy - peak_doy) / 365.0).cos();
            let diurnal =
                params.t_diurnal_amp_c * (std::f64::consts::TAU * (solar_h - 14.5) / 24.0).cos();
            temp_c.push(params.t_mean_c + seasonal + diurnal + params.t_noise_c * z_temp);

            // Irradiance.
            let cloud = (params.cloud_mean + params.cloud_variability * z_cloud).clamp(0.0, 1.0);
            let cz = solar::cos_zenith(position.lat, doy, solar_h);
            ghi_wm2.push(solar::clear_sky_ghi(cz) * solar::cloud_attenuation(cloud));

            // Wind: Gaussian AR state → uniform → Weibull quantile, with a
            // winter-peaking seasonal factor.
            let u = phi_approx(z_wind).clamp(1e-9, 1.0 - 1e-9);
            let weibull = params.wind_scale_ms * (-(1.0 - u).ln()).powf(1.0 / params.wind_shape);
            let winter = -(std::f64::consts::TAU * (doy - peak_doy) / 365.0).cos();
            wind_ms.push((weibull * (1.0 + params.wind_seasonal * winter)).max(0.0));

            pressure_kpa.push(base_pressure + 0.2 * z_temp);
        }

        Tmy {
            temp_c,
            ghi_wm2,
            wind_ms,
            pressure_kpa,
        }
    }

    /// Number of hours in the year.
    pub fn len(&self) -> usize {
        self.temp_c.len()
    }

    /// `true` when the series is empty (never for synthesized years).
    pub fn is_empty(&self) -> bool {
        self.temp_c.is_empty()
    }

    /// Annual mean temperature, °C.
    pub fn mean_temp_c(&self) -> f64 {
        mean(&self.temp_c)
    }

    /// Maximum hourly temperature of the year, °C.
    pub fn max_temp_c(&self) -> f64 {
        self.temp_c
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Annual mean global horizontal irradiance, W/m².
    pub fn mean_ghi_wm2(&self) -> f64 {
        mean(&self.ghi_wm2)
    }

    /// Annual mean wind speed, m/s.
    pub fn mean_wind_ms(&self) -> f64 {
        mean(&self.wind_ms)
    }

    /// Mean of `series` over calendar day `day` (0-based, UTC).
    pub fn daily_mean(series: &[f64], day: usize) -> f64 {
        let lo = day * 24;
        let hi = (lo + 24).min(series.len());
        mean(&series[lo..hi])
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Standard normal sample via Box–Muller.
fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Logistic approximation of the standard normal CDF (max error ~0.01).
fn phi_approx(x: f64) -> f64 {
    1.0 / (1.0 + (-1.702 * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> Tmy {
        Tmy::synthesize(&ClimateParams::default(), LatLon::new(45.0, 10.0), seed)
    }

    #[test]
    fn deterministic_by_seed() {
        let a = sample(7);
        let b = sample(7);
        assert_eq!(a.temp_c, b.temp_c);
        assert_eq!(a.wind_ms, b.wind_ms);
        let c = sample(8);
        assert_ne!(a.temp_c, c.temp_c);
    }

    #[test]
    fn full_year_of_hours() {
        let t = sample(1);
        assert_eq!(t.len(), HOURS_PER_YEAR);
        assert!(!t.is_empty());
    }

    #[test]
    fn physical_bounds() {
        let t = sample(2);
        for h in 0..t.len() {
            assert!(t.ghi_wm2[h] >= 0.0 && t.ghi_wm2[h] < 1100.0, "ghi {h}");
            assert!(t.wind_ms[h] >= 0.0 && t.wind_ms[h] < 80.0, "wind {h}");
            assert!(t.temp_c[h] > -60.0 && t.temp_c[h] < 60.0, "temp {h}");
            assert!(t.pressure_kpa[h] > 50.0 && t.pressure_kpa[h] < 110.0);
        }
    }

    #[test]
    fn night_is_dark() {
        let t = sample(3);
        // At lon 10°E, UTC midnight ≈ 00:40 solar: always dark at lat 45.
        for day in 0..365 {
            assert_eq!(t.ghi_wm2[day * 24], 0.0, "day {day}");
        }
    }

    #[test]
    fn northern_summer_is_warmer() {
        let t = sample(4);
        let january = Tmy::daily_mean(&t.temp_c, 10);
        let july: f64 = (185..195)
            .map(|d| Tmy::daily_mean(&t.temp_c, d))
            .sum::<f64>()
            / 10.0;
        assert!(july > january + 5.0, "july {july} january {january}");
    }

    #[test]
    fn southern_seasons_flip() {
        let p = ClimateParams::default();
        let t = Tmy::synthesize(&p, LatLon::new(-35.0, 150.0), 5);
        let january = Tmy::daily_mean(&t.temp_c, 10);
        let july: f64 = (185..195)
            .map(|d| Tmy::daily_mean(&t.temp_c, d))
            .sum::<f64>()
            / 10.0;
        assert!(january > july + 5.0, "january {january} july {july}");
    }

    #[test]
    fn wind_mean_tracks_weibull_scale() {
        // Weibull(k=2) mean = scale·Γ(1.5) ≈ 0.886·scale.
        let mut p = ClimateParams {
            wind_seasonal: 0.0,
            ..ClimateParams::default()
        };
        p.wind_scale_ms = 8.0;
        let t = Tmy::synthesize(&p, LatLon::new(45.0, 10.0), 6);
        let m = t.mean_wind_ms();
        assert!((m - 0.886 * 8.0).abs() < 0.6, "mean wind {m}");
    }

    #[test]
    fn wind_is_autocorrelated() {
        let t = sample(7);
        // Lag-1 autocorrelation of hourly wind should be clearly positive.
        let w = &t.wind_ms;
        let m = t.mean_wind_ms();
        let var: f64 = w.iter().map(|x| (x - m).powi(2)).sum();
        let cov: f64 = w.windows(2).map(|p| (p[0] - m) * (p[1] - m)).sum();
        let rho = cov / var;
        assert!(rho > 0.8, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn cloudier_params_reduce_irradiance() {
        let clear = ClimateParams {
            cloud_mean: 0.1,
            ..ClimateParams::default()
        };
        let cloudy = ClimateParams {
            cloud_mean: 0.8,
            ..ClimateParams::default()
        };
        let pos = LatLon::new(40.0, 0.0);
        let a = Tmy::synthesize(&clear, pos, 8).mean_ghi_wm2();
        let b = Tmy::synthesize(&cloudy, pos, 8).mean_ghi_wm2();
        assert!(a > b * 1.3, "clear {a} cloudy {b}");
    }

    #[test]
    fn elevation_lowers_pressure() {
        let low = ClimateParams {
            elevation_m: 0.0,
            ..ClimateParams::default()
        };
        let high = ClimateParams {
            elevation_m: 1900.0,
            ..ClimateParams::default()
        };
        let pos = LatLon::new(19.4, -99.1);
        let a = Tmy::synthesize(&low, pos, 9);
        let b = Tmy::synthesize(&high, pos, 9);
        assert!(mean(&a.pressure_kpa) - mean(&b.pressure_kpa) > 15.0);
    }
}
