//! A small deterministic discrete-event simulation kernel.
//!
//! GreenNebula's emulation (paper §V-B/C) advances a multi-datacenter world
//! through hourly scheduling rounds, VM migrations with WAN transfer times,
//! and file-system re-replication — all discrete events. This kernel
//! provides the time base and event queue those components share:
//!
//! * [`SimTime`] — simulation time in integer seconds (no floating-point
//!   clock drift, total ordering).
//! * [`EventQueue`] — a priority queue with **stable FIFO ordering among
//!   simultaneous events**, so runs are reproducible regardless of
//!   insertion pattern.
//! * [`Engine`] — a run loop that pops events and hands them to a handler
//!   until a horizon is reached or the queue drains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulation time: seconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * 3600)
    }

    /// Builds from whole minutes.
    pub fn from_minutes(m: u64) -> Self {
        SimTime(m * 60)
    }

    /// Seconds since start.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole hours since start (truncating).
    pub fn as_hours(self) -> u64 {
        self.0 / 3600
    }

    /// Fractional hours since start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// This time plus `secs` seconds.
    pub fn plus_secs(self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }

    /// This time plus a fractional number of hours (rounded to seconds,
    /// clamped at zero).
    pub fn plus_hours_f64(self, hours: f64) -> SimTime {
        SimTime(self.0 + (hours.max(0.0) * 3600.0).round() as u64)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.0 / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Drives an [`EventQueue`] through a handler until a horizon.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.schedule(time, event);
    }

    /// Schedules an event `secs` seconds from now.
    pub fn schedule_in(&mut self, secs: u64, event: E) {
        let t = self.now.plus_secs(secs);
        self.queue.schedule(t, event);
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains or the next event is beyond `horizon`;
    /// the handler may schedule more events through the engine.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (t, e) = self.queue.pop().expect("peeked");
            self.now = t;
            handler(self, t, e);
        }
        self.now = self.now.max(horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        let t = SimTime::from_hours(2).plus_secs(90);
        assert_eq!(t.as_secs(), 7290);
        assert_eq!(t.as_hours(), 2);
        assert!((t.as_hours_f64() - 2.025).abs() < 1e-12);
        assert_eq!(SimTime::from_minutes(3).as_secs(), 180);
        assert_eq!(t.to_string(), "02:01:30");
    }

    #[test]
    fn plus_hours_rounds_to_seconds() {
        let t = SimTime::ZERO.plus_hours_f64(0.5);
        assert_eq!(t.as_secs(), 1800);
        let neg = SimTime(10).plus_hours_f64(-5.0);
        assert_eq!(neg.as_secs(), 10, "negative durations clamp to zero");
    }

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), "b");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(50), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(50), "b")), "FIFO among ties");
        assert_eq!(q.pop(), Some((SimTime(50), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn engine_runs_cascading_events() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime(10), 1);
        let mut seen = Vec::new();
        engine.run_until(SimTime(100), |eng, t, e| {
            seen.push((t.as_secs(), e));
            if e < 3 {
                eng.schedule_in(20, e + 1);
            }
        });
        assert_eq!(seen, vec![(10, 1), (30, 2), (50, 3)]);
        assert_eq!(engine.now(), SimTime(100));
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn horizon_stops_early_and_preserves_future_events() {
        let mut engine: Engine<&str> = Engine::new();
        engine.schedule_at(SimTime(10), "now");
        engine.schedule_at(SimTime(1000), "later");
        let mut seen = Vec::new();
        engine.run_until(SimTime(100), |_, _, e| seen.push(e));
        assert_eq!(seen, vec!["now"]);
        assert_eq!(engine.pending(), 1);
        engine.run_until(SimTime(2000), |_, _, e| seen.push(e));
        assert_eq!(seen, vec!["now", "later"]);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime(10), ());
        engine.run_until(SimTime(50), |_, _, _| {});
        engine.schedule_at(SimTime(5), ());
    }
}
