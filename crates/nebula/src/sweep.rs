//! Parallel scenario sweeps over the operational emulation.
//!
//! Year-scale questions — how much storage is worth installing, how robust
//! is follow-the-renewables to forecast noise, what does a thin WAN cost —
//! are answered by running many independent [`EmulationConfig`]s and
//! comparing annual statistics. Scenarios are embarrassingly parallel, so
//! the sweep fans them out over scoped crossbeam threads (the same pattern
//! the siting search uses for its annealing chains) and returns results in
//! input order regardless of completion order. Fault-injecting scenarios
//! compose transparently: their resilience aggregates ride along in the
//! per-scenario row.

use crate::emulation::{self, EmulationConfig, EmulationReport};
use crate::error::NebulaError;
use greencloud_climate::catalog::WorldCatalog;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One named sweep entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Label carried into the result (e.g. "winter, 20 MWh, noisy σ=0.2").
    pub name: String,
    /// The full emulation configuration to run.
    pub config: EmulationConfig,
}

impl Scenario {
    /// Creates a named scenario.
    pub fn new(name: impl Into<String>, config: EmulationConfig) -> Self {
        Self {
            name: name.into(),
            config,
        }
    }
}

/// Outcome of one scenario: the aggregate statistics an annual comparison
/// needs, without the per-hour trace (a year of [`crate::TraceRow`]s per
/// scenario would dominate memory on wide sweeps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario label.
    pub name: String,
    /// Hours emulated.
    pub hours: usize,
    /// Fraction of demand served green.
    pub green_fraction: f64,
    /// Total brown energy, MWh.
    pub brown_mwh: f64,
    /// Total demand, MWh.
    pub demand_mwh: f64,
    /// VM migrations executed.
    pub migrations: usize,
    /// Total migration payload shipped, GB.
    pub migrated_gb: f64,
    /// Battery energy delivered to loads, MWh.
    pub battery_out_mwh: f64,
    /// Banked net-meter energy drawn back, MWh.
    pub net_drawn_mwh: f64,
    /// Warm-start rate of the rolling scheduler, in `[0, 1]`.
    pub warm_rate: f64,
    /// Total simplex iterations spent on hourly re-solves.
    pub lp_iterations: usize,
    /// Fraction of requested VM-hours actually served (1.0 for fault-free
    /// scenarios).
    pub slo_attainment: f64,
    /// VM-hours lost to outages (0.0 for fault-free scenarios).
    pub vm_downtime_hours: f64,
}

impl ScenarioResult {
    fn from_report(name: String, hours: usize, r: &EmulationReport) -> Self {
        Self {
            name,
            hours,
            green_fraction: r.green_fraction,
            brown_mwh: r.total_brown_mwh,
            demand_mwh: r.total_demand_mwh,
            migrations: r.migrations,
            migrated_gb: r.migrated_gb,
            battery_out_mwh: r.battery_out_mwh,
            net_drawn_mwh: r.net_drawn_mwh,
            warm_rate: r.scheduler_stats.warm_rate(),
            lp_iterations: r.scheduler_stats.iterations,
            slo_attainment: r
                .resilience
                .as_ref()
                .map(|res| res.slo_attainment)
                .unwrap_or(1.0),
            vm_downtime_hours: r
                .resilience
                .as_ref()
                .map(|res| res.vm_downtime_hours)
                .unwrap_or(0.0),
        }
    }
}

/// Runs every scenario against `catalog`, at most `threads` at a time
/// (`0` = one per available core, clamped), and returns results in
/// scenario order. Each scenario gets its own [`crate::RollingScheduler`],
/// GDFS master, and storage ledgers, so runs never share mutable state.
///
/// # Errors
///
/// Returns the first scenario error in input order (later scenarios still
/// run to completion before the sweep returns).
pub fn run_sweep(
    catalog: &WorldCatalog,
    scenarios: &[Scenario],
    threads: usize,
) -> Result<Vec<ScenarioResult>, NebulaError> {
    let cancel = std::sync::atomic::AtomicBool::new(false);
    run_sweep_with_cancel(catalog, scenarios, threads, &cancel)
}

/// [`run_sweep`] with cooperative cancellation: the flag propagates into
/// every scenario's emulation (polled hourly) and also stops workers from
/// claiming further scenarios.
pub fn run_sweep_with_cancel(
    catalog: &WorldCatalog,
    scenarios: &[Scenario],
    threads: usize,
    cancel: &std::sync::atomic::AtomicBool,
) -> Result<Vec<ScenarioResult>, NebulaError> {
    run_sweep_observed(catalog, scenarios, threads, cancel, None)
}

/// Per-scenario progress observer: called with `(done, total)` from
/// whichever worker finishes a scenario, so it must be `Sync`.
pub type ScenarioObserver<'a> = &'a (dyn Fn(usize, usize) + Sync);

/// [`run_sweep_with_cancel`] with an optional completion observer: fires
/// `(0, total)` before any scenario runs, then `(done, total)` as each
/// scenario finishes (in completion order, not input order).
pub fn run_sweep_observed(
    catalog: &WorldCatalog,
    scenarios: &[Scenario],
    threads: usize,
    cancel: &std::sync::atomic::AtomicBool,
    progress: Option<ScenarioObserver<'_>>,
) -> Result<Vec<ScenarioResult>, NebulaError> {
    let threads = if threads == 0 {
        // Mirrors `greencloud_core::tool::default_threads` (this crate
        // sits below `core`, so the helper cannot be shared directly).
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16)
    } else {
        threads
    };
    let threads = threads.min(scenarios.len().max(1));
    let mut slots: Vec<Option<Result<ScenarioResult, NebulaError>>> =
        (0..scenarios.len()).map(|_| None).collect();
    if let Some(observe) = progress {
        observe(0, scenarios.len());
    }
    {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let done = std::sync::atomic::AtomicUsize::new(0);
        let slots = Mutex::new(&mut slots);
        let scope_out = crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                let next = &next;
                let done = &done;
                let slots = &slots;
                scope.spawn(move |_| loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= scenarios.len() {
                        break;
                    }
                    let s = &scenarios[k];
                    let out = if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                        Err(NebulaError::Cancelled)
                    } else {
                        emulation::run_with_cancel(catalog, &s.config, cancel).map(|r| {
                            ScenarioResult::from_report(s.name.clone(), s.config.hours, &r)
                        })
                    };
                    // Tolerate a poisoned lock: a sibling panicking between
                    // scenarios must not take this worker's result with it.
                    let mut guard = slots.lock().unwrap_or_else(|p| p.into_inner());
                    guard[k] = Some(out);
                    drop(guard);
                    let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    if let Some(observe) = progress {
                        observe(finished, scenarios.len());
                    }
                });
            }
        });
        if scope_out.is_err() {
            return Err(NebulaError::Config("a sweep worker thread panicked".into()));
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(NebulaError::Config(
                    "a scenario was claimed but never finished".into(),
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;
    use crate::predictor::PredictionMode;
    use crate::scheduler::SchedulerConfig;

    fn tiny(hours: usize) -> EmulationConfig {
        EmulationConfig {
            vm_count: 8,
            hours,
            scheduler: SchedulerConfig {
                window_hours: 6,
                ..SchedulerConfig::default()
            },
            ..EmulationConfig::default()
        }
    }

    #[test]
    fn sweep_preserves_scenario_order_and_matches_serial_runs() {
        let w = WorldCatalog::anchors_only(4);
        let scenarios = vec![
            Scenario::new("plain", tiny(12)),
            Scenario::new("storage", tiny(12).with_batteries(5_000.0)),
            Scenario::new(
                "noisy",
                EmulationConfig {
                    prediction: PredictionMode::Noisy {
                        sigma: 0.2,
                        seed: 7,
                    },
                    ..tiny(12)
                },
            ),
            Scenario::new("long", tiny(30)),
        ];
        let parallel = run_sweep(&w, &scenarios, 4).expect("sweep");
        assert_eq!(
            parallel.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec!["plain", "storage", "noisy", "long"],
        );
        // Parallel execution must not perturb the per-scenario physics.
        for (got, s) in parallel.iter().zip(&scenarios) {
            let serial = emulation::run(&w, &s.config).expect("serial");
            assert_eq!(got.brown_mwh, serial.total_brown_mwh, "{}", s.name);
            assert_eq!(got.migrations, serial.migrations, "{}", s.name);
            assert_eq!(got.slo_attainment, 1.0, "{}", s.name);
        }
        assert_eq!(parallel[3].hours, 30);
    }

    #[test]
    fn sweep_surfaces_the_first_error() {
        let w = WorldCatalog::anchors_only(4);
        let mut bad = tiny(6);
        bad.sites[0].location_name = "Atlantis".into();
        let scenarios = vec![Scenario::new("ok", tiny(6)), Scenario::new("bad", bad)];
        let err = run_sweep(&w, &scenarios, 2).unwrap_err();
        assert_eq!(err, NebulaError::UnknownSite("Atlantis".into()));
    }

    #[test]
    fn single_thread_sweep_works() {
        let w = WorldCatalog::anchors_only(4);
        let r = run_sweep(&w, &[Scenario::new("solo", tiny(8))], 1).expect("sweep");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].hours, 8);
    }

    #[test]
    fn faulty_scenarios_compose_with_the_sweep() {
        // A chaos scenario rides next to a clean one; its resilience
        // aggregates surface in the row without perturbing the sibling.
        let w = WorldCatalog::anchors_only(4);
        let chaos = EmulationConfig {
            faults: Some(FaultSpec {
                site_availability: Some(0.95),
                site_mttr_hours: 3.0,
                ..FaultSpec::default()
            }),
            hours: 72,
            ..tiny(72)
        };
        let scenarios = vec![
            Scenario::new("clean", tiny(72)),
            Scenario::new("chaos", chaos),
        ];
        let rows = run_sweep(&w, &scenarios, 2).expect("sweep");
        assert_eq!(rows[0].slo_attainment, 1.0);
        assert_eq!(rows[0].vm_downtime_hours, 0.0);
        assert!(rows[1].slo_attainment <= 1.0);
        // 5% unavailability over 72 h on 3 sites essentially always fires
        // at least one outage with the default seed.
        assert!(rows[1].vm_downtime_hours > 0.0, "{:?}", rows[1]);
    }
}
