//! The hourly re-partitioning optimization (paper §V-A).
//!
//! Every hour the GreenNebula scheduler collects current load and a 48-hour
//! green-energy forecast per datacenter, then solves a small optimization —
//! "a variant of the \[siting\] problem where we fix the locations and
//! provisioning and remove the minimum-green constraint" — minimizing the
//! brown energy consumed over the window, including the energy overhead of
//! migrations. The first hour of the resulting trajectory becomes the
//! migration targets handed to the planner.
//!
//! Two entry points share the same formulation:
//!
//! * [`Scheduler::plan`] — a one-shot solve, cold-started. Used by tests
//!   and ad-hoc callers.
//! * [`RollingScheduler::plan`] — the operational path. The model is built
//!   once, then between rounds only the forecast coefficients, conservation
//!   right-hand sides, and migration-floor anchors are shifted in place and
//!   the solve warm-starts from the previous hour's exported [`Basis`] —
//!   the same machinery the siting search uses (see `DESIGN.md`).

use greencloud_lp::revised::{Basis, SimplexOptions};
use greencloud_lp::{
    BasisStatus, BranchAndBound, ConId, MilpOptions, Model, Sense, SolveError, VarId,
};
use serde::{Deserialize, Serialize};

/// Scheduler tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Look-ahead window, hours (the paper uses 48).
    pub window_hours: usize,
    /// Fraction of an epoch during which migrated load consumes energy at
    /// both ends.
    pub migration_fraction: f64,
    /// Tie-break penalty per MW moved (keeps the schedule from migrating
    /// gratuitously when brown energy is unaffected).
    pub migration_penalty: f64,
    /// When `Some(p)`, hour-0 loads must be integral multiples of a VM's
    /// power `p` (MW) — solved by branch & bound instead of a pure LP.
    pub integral_vm_power_mw: Option<f64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            window_hours: 48,
            migration_fraction: 1.0,
            migration_penalty: 1e-3,
            integral_vm_power_mw: None,
        }
    }
}

/// Per-datacenter state handed to the scheduler each round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteState {
    /// Green power available per hour of the window, MW.
    pub green_forecast_mw: Vec<f64>,
    /// PUE per hour of the window.
    pub pue_forecast: Vec<f64>,
    /// Load currently hosted, MW.
    pub current_load_mw: f64,
    /// Maximum hostable load, MW.
    pub capacity_mw: f64,
}

/// The scheduler's decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// Target load per datacenter for the next hour, MW.
    pub target_mw: Vec<f64>,
    /// The full per-site trajectory over the window, MW.
    pub trajectory_mw: Vec<Vec<f64>>,
    /// Brown energy the plan expects over the window, MWh.
    pub brown_mwh: f64,
    /// Optimization objective value.
    pub objective: f64,
}

/// Counters describing how a [`RollingScheduler`] spent its solves.
///
/// Equality compares the deterministic pivot/solve counters only:
/// `pricing_ns` is measured wall time and is excluded, so two replays of
/// the same scenario compare equal even though their clocks differ.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RollingStats {
    /// Scheduling rounds solved.
    pub rounds: usize,
    /// Rounds whose solve actually started from the previous basis.
    pub warm_started: usize,
    /// Total simplex iterations across all rounds.
    pub iterations: usize,
    /// Times the persistent model had to be (re)built from scratch.
    pub rebuilds: usize,
    /// Rounds that needed the graceful-degradation retry ladder (cold
    /// restart, rebuild, escalating tolerances) after a numerically failed
    /// warm solve.
    pub recoveries: usize,
    /// Basis refactorizations across all rounds.
    pub refactorizations: usize,
    /// FTRAN solves across all rounds.
    pub ftrans: usize,
    /// BTRAN solves across all rounds.
    pub btrans: usize,
    /// Wall time the LP solver spent pricing across all rounds, ns.
    pub pricing_ns: u64,
}

impl RollingStats {
    /// Fraction of rounds that warm-started, in `[0, 1]`.
    pub fn warm_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.warm_started as f64 / self.rounds as f64
        }
    }

    /// Wall time the LP solver spent pricing, in milliseconds.
    pub fn pricing_ms(&self) -> f64 {
        self.pricing_ns as f64 / 1e6
    }

    fn absorb_solve(&mut self, stats: &greencloud_lp::SolveStats) {
        self.iterations += stats.iterations;
        self.refactorizations += stats.refactorizations;
        self.ftrans += stats.ftrans;
        self.btrans += stats.btrans;
        self.pricing_ns += stats.pricing_ns;
    }
}

impl PartialEq for RollingStats {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.warm_started == other.warm_started
            && self.iterations == other.iterations
            && self.rebuilds == other.rebuilds
            && self.recoveries == other.recoveries
            && self.refactorizations == other.refactorizations
            && self.ftrans == other.ftrans
            && self.btrans == other.btrans
    }
}

impl Eq for RollingStats {}

/// The multi-datacenter scheduler (one-shot form).
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    config: SchedulerConfig,
}

/// Variable/constraint handles into the persistent window model, kept so
/// successive rounds can overwrite coefficients instead of rebuilding.
#[derive(Debug, Clone)]
struct WindowModel {
    model: Model,
    n: usize,
    /// comp[d][h]: load hosted at site `d` in window hour `h`.
    comp: Vec<Vec<VarId>>,
    /// mig[d][h]: load migrating out of site `d` during hour `h`.
    mig: Vec<Vec<VarId>>,
    /// brown[d][h]: brown power drawn.
    brown: Vec<Vec<VarId>>,
    /// Conservation constraint per window hour.
    all: Vec<ConId>,
    /// Migration-floor constraint per site per hour; hour 0 is anchored to
    /// the current placement, so its RHS moves every round.
    migfloor: Vec<Vec<ConId>>,
    /// Brown-balance constraint per site per hour (green forecast on the
    /// RHS, PUE on the coefficients — both move every round).
    brown_cons: Vec<Vec<ConId>>,
}

/// Quantizes the hour-0 conservation requirement to a feasible multiple of
/// the VM power `p`: the nearest multiple of `p` to `total_load`, clamped to
/// what the integral per-site capacities can actually host. Without this,
/// `Σ comp[d][0] = total_load` is unsatisfiable whenever the load is not an
/// exact multiple of `p` (e.g. 1.1 MW of load, 0.25 MW VMs).
fn quantize_hour0_load(total_load: f64, p: f64, sites: &[SiteState]) -> f64 {
    let hostable: f64 = sites
        .iter()
        .map(|s| (s.capacity_mw / p).floor().max(0.0))
        .sum();
    let q = (total_load / p).round().clamp(0.0, hostable);
    q * p
}

fn build_window_model(config: &SchedulerConfig, sites: &[SiteState]) -> WindowModel {
    let n = sites.len();
    let h_total = config.window_hours.max(1);
    let total_load: f64 = sites.iter().map(|s| s.current_load_mw).sum();
    let theta = config.migration_fraction;

    let mut model = Model::new();
    let mut comp = vec![Vec::with_capacity(h_total); n];
    let mut mig = vec![Vec::with_capacity(h_total); n];
    let mut brown = vec![Vec::with_capacity(h_total); n];
    for (d, site) in sites.iter().enumerate() {
        for h in 0..h_total {
            let c = if h == 0 {
                if let Some(p) = config.integral_vm_power_mw {
                    // Integral hour-0 loads: comp = p · (integer count).
                    let count = model.add_int_var(
                        format!("n[{d}]"),
                        0.0,
                        (site.capacity_mw / p).floor(),
                        0.0,
                    );
                    let c = model.add_var(format!("comp[{d},0]"), 0.0, site.capacity_mw, 0.0);
                    model.add_con(
                        format!("integral[{d}]"),
                        [(c, 1.0), (count, -p)],
                        Sense::Eq,
                        0.0,
                    );
                    c
                } else {
                    model.add_var(format!("comp[{d},0]"), 0.0, site.capacity_mw, 0.0)
                }
            } else {
                model.add_var(format!("comp[{d},{h}]"), 0.0, site.capacity_mw, 0.0)
            };
            comp[d].push(c);
            mig[d].push(model.add_var(
                format!("mig[{d},{h}]"),
                0.0,
                f64::INFINITY,
                config.migration_penalty,
            ));
            brown[d].push(model.add_var(format!("brown[{d},{h}]"), 0.0, f64::INFINITY, 1.0));
        }
    }

    let mut all = Vec::with_capacity(h_total);
    #[allow(clippy::needless_range_loop)] // h indexes several var families
    for h in 0..h_total {
        // Conservation: all load is hosted somewhere. In integral mode the
        // hour-0 requirement is quantized to the nearest hostable multiple
        // of the VM power so the MILP stays feasible.
        let rhs = match (h, config.integral_vm_power_mw) {
            (0, Some(p)) => quantize_hour0_load(total_load, p, sites),
            _ => total_load,
        };
        all.push(model.add_con(
            format!("all[{h}]"),
            (0..n).map(|d| (comp[d][h], 1.0)),
            Sense::Eq,
            rhs,
        ));
    }
    let mut migfloor = vec![Vec::with_capacity(h_total); n];
    let mut brown_cons = vec![Vec::with_capacity(h_total); n];
    for (d, site) in sites.iter().enumerate() {
        for h in 0..h_total {
            // Migration-out floor; hour 0 links to current placement.
            if h == 0 {
                migfloor[d].push(model.add_con(
                    format!("migfloor[{d},0]"),
                    [(comp[d][h], -theta), (mig[d][h], -1.0)],
                    Sense::Le,
                    -theta * site.current_load_mw,
                ));
            } else {
                migfloor[d].push(model.add_con(
                    format!("migfloor[{d},{h}]"),
                    [
                        (comp[d][h - 1], theta),
                        (comp[d][h], -theta),
                        (mig[d][h], -1.0),
                    ],
                    Sense::Le,
                    0.0,
                ));
            }
            // Brown ≥ PUE·(comp + mig) − green.
            let pue = site.pue_forecast[h];
            brown_cons[d].push(model.add_con(
                format!("brown[{d},{h}]"),
                [(brown[d][h], 1.0), (comp[d][h], -pue), (mig[d][h], -pue)],
                Sense::Ge,
                -site.green_forecast_mw[h],
            ));
        }
    }
    WindowModel {
        model,
        n,
        comp,
        mig,
        brown,
        all,
        migfloor,
        brown_cons,
    }
}

impl WindowModel {
    /// Shifts the model to this round's forecasts and placement without
    /// rebuilding: conservation and migration-floor right-hand sides, brown
    /// balance PUE coefficients and green right-hand sides, and capacity
    /// bounds. The sparsity pattern is untouched, so a basis exported from
    /// the previous round remains structurally valid.
    fn shift(&mut self, config: &SchedulerConfig, sites: &[SiteState]) {
        let h_total = config.window_hours.max(1);
        let theta = config.migration_fraction;
        let total_load: f64 = sites.iter().map(|s| s.current_load_mw).sum();
        for &con in &self.all {
            self.model.set_rhs(con, total_load);
        }
        for (d, site) in sites.iter().enumerate() {
            if let Some(&hour0) = self.migfloor[d].first() {
                self.model.set_rhs(hour0, -theta * site.current_load_mw);
            }
            for h in 0..h_total {
                self.model
                    .set_bounds(self.comp[d][h], 0.0, site.capacity_mw);
                let con = self.brown_cons[d][h];
                let pue = site.pue_forecast[h];
                self.model.set_con_term(con, self.comp[d][h], -pue);
                self.model.set_con_term(con, self.mig[d][h], -pue);
                self.model.set_rhs(con, -site.green_forecast_mw[h]);
            }
        }
    }

    /// Translates the previous round's basis one hour earlier along the
    /// window (the standard rolling-horizon / MPC warm start): the basis
    /// slot of every `(site, hour)` variable and row takes the status the
    /// same entity held at `hour + 1`, and the final window hour — whose
    /// forecast is genuinely new — duplicates the second-to-last. The
    /// permutation can unbalance the basic count, so the last slice is
    /// repaired (slacks promoted / duplicated basics demoted) until the
    /// basis is square again; irreparable snapshots return `None` and the
    /// caller falls back to the unshifted basis (the LP layer still
    /// re-validates whatever it receives and cold-starts on rejection).
    fn shift_basis(&self, prev: &Basis) -> Option<Basis> {
        let n_struct = self.model.num_vars();
        let m = self.model.num_cons();
        let statuses = prev.statuses();
        if statuses.len() != n_struct + m || !prev.artificial_rows().is_empty() {
            return None;
        }
        let h_total = self.comp.first().map_or(0, Vec::len);
        if h_total < 2 {
            return Some(prev.clone());
        }
        let mut out = statuses.to_vec();
        let var = |v: VarId| v.index();
        let slack = |c: ConId| n_struct + c.index();
        for h in 0..h_total {
            let src = (h + 1).min(h_total - 1);
            for d in 0..self.n {
                out[var(self.comp[d][h])] = statuses[var(self.comp[d][src])];
                out[var(self.mig[d][h])] = statuses[var(self.mig[d][src])];
                out[var(self.brown[d][h])] = statuses[var(self.brown[d][src])];
                out[slack(self.migfloor[d][h])] = statuses[slack(self.migfloor[d][src])];
                out[slack(self.brown_cons[d][h])] = statuses[slack(self.brown_cons[d][src])];
            }
            out[slack(self.all[h])] = statuses[slack(self.all[src])];
        }
        // Re-square the basis: the dropped hour-0 slice and the duplicated
        // final slice rarely hold the same number of basics.
        let mut basic_count = out.iter().filter(|&&s| s == BasisStatus::Basic).count();
        let last = h_total - 1;
        if basic_count > m {
            // Demote duplicated final-slice basics (variables first: their
            // slacks can re-enter cheaply).
            for d in 0..self.n {
                for j in [
                    var(self.mig[d][last]),
                    var(self.brown[d][last]),
                    var(self.comp[d][last]),
                ] {
                    if basic_count == m {
                        break;
                    }
                    if out[j] == BasisStatus::Basic {
                        out[j] = BasisStatus::AtLower;
                        basic_count -= 1;
                    }
                }
            }
        } else if basic_count < m {
            // Promote final-slice row slacks until square.
            for d in 0..self.n {
                for j in [
                    slack(self.brown_cons[d][last]),
                    slack(self.migfloor[d][last]),
                ] {
                    if basic_count == m {
                        break;
                    }
                    if out[j] != BasisStatus::Basic {
                        out[j] = BasisStatus::Basic;
                        basic_count += 1;
                    }
                }
            }
            if basic_count < m && out[slack(self.all[last])] != BasisStatus::Basic {
                out[slack(self.all[last])] = BasisStatus::Basic;
                basic_count += 1;
            }
        }
        if basic_count == m {
            Some(Basis::from_statuses(out))
        } else {
            None
        }
    }

    fn extract(&self, sol: &greencloud_lp::Solution, h_total: usize) -> SchedulePlan {
        let trajectory: Vec<Vec<f64>> = (0..self.n)
            .map(|d| {
                (0..h_total)
                    .map(|h| sol[self.comp[d][h]].max(0.0))
                    .collect()
            })
            .collect();
        let brown_mwh: f64 = (0..self.n)
            .map(|d| (0..h_total).map(|h| sol[self.brown[d][h]]).sum::<f64>())
            .sum();
        SchedulePlan {
            target_mw: trajectory
                .iter()
                .map(|t| t.first().copied().unwrap_or(0.0))
                .collect(),
            trajectory_mw: trajectory,
            brown_mwh,
            objective: sol.objective,
        }
    }
}

fn validate_sites(config: &SchedulerConfig, sites: &[SiteState]) -> Result<(), SolveError> {
    if sites.is_empty() {
        return Err(SolveError::InvalidModel("no datacenters".into()));
    }
    let h_total = config.window_hours.max(1);
    for s in sites {
        if s.green_forecast_mw.len() < h_total || s.pue_forecast.len() < h_total {
            return Err(SolveError::InvalidModel(
                "forecast shorter than the scheduling window".into(),
            ));
        }
    }
    Ok(())
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Self { config }
    }

    /// Computes the re-partitioning plan for the current hour (one-shot,
    /// cold-started solve).
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidModel`] for inconsistent inputs;
    /// [`SolveError::Infeasible`] when the total load exceeds total
    /// capacity; solver errors otherwise.
    pub fn plan(&self, sites: &[SiteState]) -> Result<SchedulePlan, SolveError> {
        let mut rolling = RollingScheduler::new(self.config.clone());
        rolling.plan(sites)
    }
}

/// The operational scheduler: keeps one persistent window model across
/// hourly rounds and warm-starts every re-solve from the previous hour's
/// basis. Rebuilds (and cold-solves) only when the site count changes or
/// integral mode forces branch & bound.
#[derive(Debug, Clone, Default)]
pub struct RollingScheduler {
    config: SchedulerConfig,
    window: Option<WindowModel>,
    basis: Option<Basis>,
    stats: RollingStats,
}

impl RollingScheduler {
    /// Creates a rolling scheduler with no model built yet.
    pub fn new(config: SchedulerConfig) -> Self {
        Self {
            config,
            window: None,
            basis: None,
            stats: RollingStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Solve counters accumulated since creation.
    pub fn stats(&self) -> RollingStats {
        self.stats
    }

    /// Drops the persistent model and basis; the next round rebuilds cold.
    pub fn reset(&mut self) {
        self.window = None;
        self.basis = None;
    }

    /// Computes the re-partitioning plan for the current hour, reusing the
    /// persistent model and warm-starting from the previous round.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::plan`].
    pub fn plan(&mut self, sites: &[SiteState]) -> Result<SchedulePlan, SolveError> {
        validate_sites(&self.config, sites)?;
        let h_total = self.config.window_hours.max(1);

        if self.config.integral_vm_power_mw.is_some() {
            // Branch & bound maintains no exportable basis; integral rounds
            // rebuild the (quantized) MILP from scratch.
            let window = build_window_model(&self.config, sites);
            self.stats.rebuilds += 1;
            let sol = BranchAndBound::new(MilpOptions::default()).solve(&window.model)?;
            self.stats.rounds += 1;
            self.stats.absorb_solve(&sol.stats);
            return Ok(window.extract(&sol, h_total));
        }

        // The model is moved out of its slot for the round (and restored on
        // every exit path below), so no panicking `expect` is needed to
        // re-borrow it after the solve.
        let mut window = match self.window.take() {
            Some(mut w) if w.n == sites.len() => {
                w.shift(&self.config, sites);
                w
            }
            _ => {
                self.basis = None;
                self.stats.rebuilds += 1;
                build_window_model(&self.config, sites)
            }
        };
        let first = {
            // Successive rounds are one-hour advances of the window, so the
            // previous basis is translated one hour before installation; an
            // unshiftable snapshot is offered as-is and the LP layer's
            // validate-then-commit decides.
            let shifted = self.basis.as_ref().and_then(|b| window.shift_basis(b));
            let warm = shifted.as_ref().or(self.basis.as_ref());
            window
                .model
                .solve_with_basis(SimplexOptions::default(), warm)
        };
        let sol = match first {
            Ok(s) => s,
            Err(e) if recoverable(&e) => match self.recover(&mut window, sites) {
                Ok(s) => s,
                Err(e) => {
                    self.window = Some(window);
                    return Err(e);
                }
            },
            Err(e) => {
                self.window = Some(window);
                return Err(e);
            }
        };
        self.stats.rounds += 1;
        self.stats.absorb_solve(&sol.stats);
        if sol.warm_started {
            self.stats.warm_started += 1;
        }
        let plan = window.extract(&sol, h_total);
        self.basis = sol.basis;
        self.window = Some(window);
        Ok(plan)
    }

    /// The graceful-degradation retry ladder for a numerically failed
    /// round (topology changes — a site's capacity collapsing to zero —
    /// can leave the LP singular from the warm basis): first a cold solve
    /// of the shifted model, then a rebuild from scratch, then rebuilt
    /// solves with 10× and 100× relaxed tolerances.
    fn recover(
        &mut self,
        window: &mut WindowModel,
        sites: &[SiteState],
    ) -> Result<greencloud_lp::Solution, SolveError> {
        self.stats.recoveries += 1;
        self.basis = None;
        let cold = window
            .model
            .solve_with_basis(SimplexOptions::default(), None);
        let mut last = match cold {
            Ok(s) => return Ok(s),
            Err(e) if recoverable(&e) => e,
            Err(e) => return Err(e),
        };
        *window = build_window_model(&self.config, sites);
        self.stats.rebuilds += 1;
        let base = SimplexOptions::default();
        for mult in [1.0, 10.0, 100.0] {
            let opts = SimplexOptions {
                feas_tol: base.feas_tol * mult,
                opt_tol: base.opt_tol * mult,
                ..base.clone()
            };
            match window.model.solve_with_basis(opts, None) {
                Ok(s) => return Ok(s),
                Err(e) if recoverable(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}

/// Errors worth retrying through the recovery ladder: numerical trouble
/// and iteration stalls. Infeasible/unbounded/invalid models are facts
/// about the inputs, not the arithmetic.
fn recoverable(e: &SolveError) -> bool {
    matches!(e, SolveError::Numerical(_) | SolveError::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(green: Vec<f64>, load: f64, cap: f64) -> SiteState {
        let h = green.len();
        SiteState {
            green_forecast_mw: green,
            pue_forecast: vec![1.0; h],
            current_load_mw: load,
            capacity_mw: cap,
        }
    }

    #[test]
    fn load_follows_the_green_site() {
        // Site 0 is dark, site 1 has abundant green power: everything moves.
        let s0 = site(vec![0.0; 4], 10.0, 20.0);
        let s1 = site(vec![50.0; 4], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        assert!(plan.target_mw[1] > 9.9, "targets {:?}", plan.target_mw);
        assert!(plan.target_mw[0] < 0.1);
    }

    #[test]
    fn no_gratuitous_migration_when_both_sites_green() {
        let s0 = site(vec![50.0; 4], 10.0, 20.0);
        let s1 = site(vec![50.0; 4], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        // Both sites are fully green; the migration penalty keeps load put.
        assert!(plan.target_mw[0] > 9.9, "targets {:?}", plan.target_mw);
        assert!((plan.brown_mwh).abs() < 1e-6);
    }

    #[test]
    fn migration_energy_counts() {
        // Moving load costs energy at the donor; if green barely covers the
        // move, the plan can prefer staying.
        let s0 = site(vec![10.5; 2], 10.0, 20.0);
        let s1 = site(vec![10.5; 2], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 2,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        assert!(
            plan.target_mw[0] > 9.9,
            "should not bounce: {:?}",
            plan.target_mw
        );
    }

    #[test]
    fn follows_the_sun_across_a_window() {
        // Green moves from site 0 (hours 0–1) to site 1 (hours 2–3). Site 0
        // keeps just enough green at hour 2 to power the migration out, so
        // migrating exactly at hour 2 is the unique zero-brown schedule.
        let s0 = site(vec![20.0, 20.0, 12.0, 0.0], 10.0, 20.0);
        let s1 = site(vec![0.0, 0.0, 20.0, 20.0], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        assert!(plan.trajectory_mw[0][0] > 9.9);
        assert!(
            plan.trajectory_mw[0][1] > 9.9,
            "no move before the handoff hour"
        );
        assert!(plan.trajectory_mw[1][2] > 9.9);
        assert!(plan.trajectory_mw[1][3] > 9.9);
    }

    #[test]
    fn infeasible_when_capacity_is_insufficient() {
        let s0 = site(vec![0.0; 2], 30.0, 10.0);
        let s1 = site(vec![0.0; 2], 0.0, 10.0);
        let err = Scheduler::new(SchedulerConfig {
            window_hours: 2,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn integral_mode_quantizes_targets() {
        // Total load is 4 VMs × 0.25 MW; hour-0 targets must stay integral.
        let s0 = site(vec![0.0; 3], 1.0, 20.0);
        let s1 = site(vec![50.0; 3], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 3,
            integral_vm_power_mw: Some(0.25),
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        for &t in &plan.target_mw {
            let q = t / 0.25;
            assert!((q - q.round()).abs() < 1e-5, "target {t} not integral");
        }
        let sum: f64 = plan.target_mw.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn integral_mode_survives_fractional_total_load() {
        // 1.1 MW of load with 0.25 MW VMs: Σ comp[d][0] can only reach
        // multiples of 0.25, so the unquantized MILP was infeasible. The
        // quantized hour-0 conservation rounds to the nearest multiple.
        let s0 = site(vec![0.0; 3], 1.1, 20.0);
        let s1 = site(vec![50.0; 3], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 3,
            integral_vm_power_mw: Some(0.25),
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("quantized MILP stays feasible");
        for &t in &plan.target_mw {
            let q = t / 0.25;
            assert!((q - q.round()).abs() < 1e-5, "target {t} not integral");
        }
        // 1.1 / 0.25 = 4.4 rounds to 4 VMs = 1.0 MW at hour 0.
        let sum: f64 = plan.target_mw.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn integral_quantization_respects_capacity() {
        // Capacity admits at most 3 whole VMs per site; rounding up past
        // the hostable count would reintroduce infeasibility.
        let sites = [
            site(vec![0.0; 2], 0.9, 0.95),
            site(vec![5.0; 2], 0.95, 0.95),
        ];
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 2,
            integral_vm_power_mw: Some(0.25),
            ..SchedulerConfig::default()
        })
        .plan(&sites)
        .expect("clamped to hostable VMs");
        let sum: f64 = plan.target_mw.iter().sum();
        // 1.85 / 0.25 = 7.4 → 7 VMs, but only 3 + 3 fit: clamp to 6.
        assert!((sum - 1.5).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn short_forecast_is_rejected() {
        let s0 = site(vec![0.0; 2], 1.0, 2.0);
        let err = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0])
        .unwrap_err();
        assert!(matches!(err, SolveError::InvalidModel(_)));
    }

    /// Synthetic day/night production for two anti-phased sites over an
    /// absolute-hour axis, sliced into rolling windows.
    fn rolling_states(t: usize, window: usize, load0: f64, load1: f64) -> [SiteState; 2] {
        let day = |h: usize, phase: f64| -> f64 {
            let x = (h as f64 / 24.0 * std::f64::consts::TAU + phase).sin();
            (14.0 * x).max(0.0)
        };
        let g0: Vec<f64> = (0..window).map(|k| day(t + k, 0.0)).collect();
        let g1: Vec<f64> = (0..window)
            .map(|k| day(t + k, std::f64::consts::PI))
            .collect();
        [site(g0, load0, 20.0), site(g1, load1, 20.0)]
    }

    #[test]
    fn rolling_matches_one_shot_and_warm_starts() {
        // Two anti-phased sites re-planned hourly over three simulated
        // days, loads following the previous round's targets — the
        // emulation's exact call pattern. The rolling scheduler must agree
        // with fresh one-shot solves and warm-start nearly every round via
        // the shifted basis.
        let config = SchedulerConfig {
            window_hours: 12,
            ..SchedulerConfig::default()
        };
        let mut rolling = RollingScheduler::new(config.clone());
        let one_shot = Scheduler::new(config);
        let (mut load0, mut load1) = (10.0, 0.0);
        let rounds = 72;
        for t in 0..rounds {
            let sites = rolling_states(t, 12, load0, load1);
            let a = rolling.plan(&sites).expect("rolling plan");
            let b = one_shot.plan(&sites).expect("one-shot plan");
            assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "hour {t}: rolling {} vs one-shot {}",
                a.objective,
                b.objective
            );
            assert!((a.brown_mwh - b.brown_mwh).abs() < 1e-6, "hour {t}");
            load0 = a.target_mw[0];
            load1 = a.target_mw[1];
        }
        let stats = rolling.stats();
        assert_eq!(stats.rounds, rounds);
        assert_eq!(stats.rebuilds, 1, "model built exactly once");
        assert!(
            stats.warm_started * 2 > rounds,
            "expected mostly warm starts, got {stats:?}"
        );
    }

    #[test]
    fn rolling_rebuilds_when_site_count_changes() {
        let mut rolling = RollingScheduler::new(SchedulerConfig {
            window_hours: 3,
            ..SchedulerConfig::default()
        });
        let two = [site(vec![9.0; 3], 5.0, 20.0), site(vec![0.0; 3], 0.0, 20.0)];
        rolling.plan(&two).expect("two sites");
        let three = [
            site(vec![9.0; 3], 5.0, 20.0),
            site(vec![0.0; 3], 0.0, 20.0),
            site(vec![4.0; 3], 0.0, 20.0),
        ];
        rolling.plan(&three).expect("three sites");
        assert_eq!(rolling.stats().rebuilds, 2);
        rolling.plan(&three).expect("steady state");
        assert_eq!(rolling.stats().rebuilds, 2, "no extra rebuild");
    }

    #[test]
    fn capacity_collapse_shifts_without_rebuild() {
        // A site outage is presented to the scheduler as capacity (and
        // forecast) dropping to zero with the site count unchanged; the
        // persistent model must absorb it through `shift` and plan all
        // load onto the survivor, then recover when the site returns.
        let mut rolling = RollingScheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        });
        let healthy = [
            site(vec![30.0; 4], 10.0, 20.0),
            site(vec![30.0; 4], 0.0, 20.0),
        ];
        rolling.plan(&healthy).expect("healthy round");
        let dead0 = [
            SiteState {
                green_forecast_mw: vec![0.0; 4],
                pue_forecast: vec![1.0; 4],
                current_load_mw: 0.0, // evacuated before the round
                capacity_mw: 0.0,
            },
            site(vec![30.0; 4], 10.0, 20.0),
        ];
        let plan = rolling.plan(&dead0).expect("degraded round");
        assert!(plan.target_mw[0] < 1e-9, "dead site hosts nothing");
        assert!((plan.target_mw[1] - 10.0).abs() < 1e-6);
        let back = rolling.plan(&healthy).expect("recovered round");
        let sum: f64 = back.target_mw.iter().sum();
        assert!((sum - 10.0).abs() < 1e-6);
        assert_eq!(rolling.stats().rebuilds, 1, "no rebuild across the outage");
        assert_eq!(rolling.stats().recoveries, 0, "shift alone sufficed");
    }

    #[test]
    fn rolling_reset_forgets_the_basis() {
        let mut rolling = RollingScheduler::new(SchedulerConfig {
            window_hours: 3,
            ..SchedulerConfig::default()
        });
        let sites = [site(vec![9.0; 3], 5.0, 20.0), site(vec![2.0; 3], 0.0, 20.0)];
        rolling.plan(&sites).expect("first");
        rolling.reset();
        rolling.plan(&sites).expect("after reset");
        assert_eq!(rolling.stats().rebuilds, 2);
    }
}
