//! The hourly re-partitioning optimization (paper §V-A).
//!
//! Every hour the GreenNebula scheduler collects current load and a 48-hour
//! green-energy forecast per datacenter, then solves a small optimization —
//! "a variant of the [siting] problem where we fix the locations and
//! provisioning and remove the minimum-green constraint" — minimizing the
//! brown energy consumed over the window, including the energy overhead of
//! migrations. The first hour of the resulting trajectory becomes the
//! migration targets handed to the planner.

use greencloud_lp::{BranchAndBound, MilpOptions, Model, Sense, SolveError};
use serde::{Deserialize, Serialize};

/// Scheduler tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Look-ahead window, hours (the paper uses 48).
    pub window_hours: usize,
    /// Fraction of an epoch during which migrated load consumes energy at
    /// both ends.
    pub migration_fraction: f64,
    /// Tie-break penalty per MW moved (keeps the schedule from migrating
    /// gratuitously when brown energy is unaffected).
    pub migration_penalty: f64,
    /// When `Some(p)`, hour-0 loads must be integral multiples of a VM's
    /// power `p` (MW) — solved by branch & bound instead of a pure LP.
    pub integral_vm_power_mw: Option<f64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            window_hours: 48,
            migration_fraction: 1.0,
            migration_penalty: 1e-3,
            integral_vm_power_mw: None,
        }
    }
}

/// Per-datacenter state handed to the scheduler each round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteState {
    /// Green power available per hour of the window, MW.
    pub green_forecast_mw: Vec<f64>,
    /// PUE per hour of the window.
    pub pue_forecast: Vec<f64>,
    /// Load currently hosted, MW.
    pub current_load_mw: f64,
    /// Maximum hostable load, MW.
    pub capacity_mw: f64,
}

/// The scheduler's decision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// Target load per datacenter for the next hour, MW.
    pub target_mw: Vec<f64>,
    /// The full per-site trajectory over the window, MW.
    pub trajectory_mw: Vec<Vec<f64>>,
    /// Brown energy the plan expects over the window, MWh.
    pub brown_mwh: f64,
    /// Optimization objective value.
    pub objective: f64,
}

/// The multi-datacenter scheduler.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    config: SchedulerConfig,
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Self { config }
    }

    /// Computes the re-partitioning plan for the current hour.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidModel`] for inconsistent inputs;
    /// [`SolveError::Infeasible`] when the total load exceeds total
    /// capacity; solver errors otherwise.
    pub fn plan(&self, sites: &[SiteState]) -> Result<SchedulePlan, SolveError> {
        let n = sites.len();
        if n == 0 {
            return Err(SolveError::InvalidModel("no datacenters".into()));
        }
        let h_total = self.config.window_hours.max(1);
        for s in sites {
            if s.green_forecast_mw.len() < h_total || s.pue_forecast.len() < h_total {
                return Err(SolveError::InvalidModel(
                    "forecast shorter than the scheduling window".into(),
                ));
            }
        }
        let total_load: f64 = sites.iter().map(|s| s.current_load_mw).sum();
        let theta = self.config.migration_fraction;

        let mut model = Model::new();
        // comp[d][h], mig_out[d][h], brown[d][h]
        let mut comp = vec![Vec::with_capacity(h_total); n];
        let mut mig = vec![Vec::with_capacity(h_total); n];
        let mut brown = vec![Vec::with_capacity(h_total); n];
        for (d, site) in sites.iter().enumerate() {
            for h in 0..h_total {
                let c = if h == 0 {
                    if let Some(p) = self.config.integral_vm_power_mw {
                        // Integral hour-0 loads: comp = p · (integer count).
                        let count = model.add_int_var(
                            format!("n[{d}]"),
                            0.0,
                            (site.capacity_mw / p).floor(),
                            0.0,
                        );
                        let c = model.add_var(format!("comp[{d},0]"), 0.0, site.capacity_mw, 0.0);
                        model.add_con(
                            format!("integral[{d}]"),
                            [(c, 1.0), (count, -p)],
                            Sense::Eq,
                            0.0,
                        );
                        c
                    } else {
                        model.add_var(format!("comp[{d},0]"), 0.0, site.capacity_mw, 0.0)
                    }
                } else {
                    model.add_var(format!("comp[{d},{h}]"), 0.0, site.capacity_mw, 0.0)
                };
                comp[d].push(c);
                mig[d].push(model.add_var(
                    format!("mig[{d},{h}]"),
                    0.0,
                    f64::INFINITY,
                    self.config.migration_penalty,
                ));
                brown[d].push(model.add_var(format!("brown[{d},{h}]"), 0.0, f64::INFINITY, 1.0));
            }
        }

        #[allow(clippy::needless_range_loop)] // h indexes several var families
        for h in 0..h_total {
            // Conservation: all load is hosted somewhere.
            model.add_con(
                format!("all[{h}]"),
                (0..n).map(|d| (comp[d][h], 1.0)),
                Sense::Eq,
                total_load,
            );
        }
        for (d, site) in sites.iter().enumerate() {
            for h in 0..h_total {
                // Migration-out floor; hour 0 links to current placement.
                if h == 0 {
                    model.add_con(
                        format!("migfloor[{d},0]"),
                        [(comp[d][0], -theta), (mig[d][0], -1.0)],
                        Sense::Le,
                        -theta * site.current_load_mw,
                    );
                } else {
                    model.add_con(
                        format!("migfloor[{d},{h}]"),
                        [
                            (comp[d][h - 1], theta),
                            (comp[d][h], -theta),
                            (mig[d][h], -1.0),
                        ],
                        Sense::Le,
                        0.0,
                    );
                }
                // Brown ≥ PUE·(comp + mig) − green.
                let pue = site.pue_forecast[h];
                model.add_con(
                    format!("brown[{d},{h}]"),
                    [(brown[d][h], 1.0), (comp[d][h], -pue), (mig[d][h], -pue)],
                    Sense::Ge,
                    -site.green_forecast_mw[h],
                );
            }
        }

        let sol = if self.config.integral_vm_power_mw.is_some() {
            BranchAndBound::new(MilpOptions::default()).solve(&model)?
        } else {
            model.solve()?
        };

        let trajectory: Vec<Vec<f64>> = (0..n)
            .map(|d| (0..h_total).map(|h| sol[comp[d][h]].max(0.0)).collect())
            .collect();
        let brown_mwh: f64 = (0..n)
            .map(|d| (0..h_total).map(|h| sol[brown[d][h]]).sum::<f64>())
            .sum();
        Ok(SchedulePlan {
            target_mw: trajectory.iter().map(|t| t[0]).collect(),
            trajectory_mw: trajectory,
            brown_mwh,
            objective: sol.objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(green: Vec<f64>, load: f64, cap: f64) -> SiteState {
        let h = green.len();
        SiteState {
            green_forecast_mw: green,
            pue_forecast: vec![1.0; h],
            current_load_mw: load,
            capacity_mw: cap,
        }
    }

    #[test]
    fn load_follows_the_green_site() {
        // Site 0 is dark, site 1 has abundant green power: everything moves.
        let s0 = site(vec![0.0; 4], 10.0, 20.0);
        let s1 = site(vec![50.0; 4], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        assert!(plan.target_mw[1] > 9.9, "targets {:?}", plan.target_mw);
        assert!(plan.target_mw[0] < 0.1);
    }

    #[test]
    fn no_gratuitous_migration_when_both_sites_green() {
        let s0 = site(vec![50.0; 4], 10.0, 20.0);
        let s1 = site(vec![50.0; 4], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        // Both sites are fully green; the migration penalty keeps load put.
        assert!(plan.target_mw[0] > 9.9, "targets {:?}", plan.target_mw);
        assert!((plan.brown_mwh).abs() < 1e-6);
    }

    #[test]
    fn migration_energy_counts() {
        // Moving load costs energy at the donor; if green barely covers the
        // move, the plan can prefer staying.
        let s0 = site(vec![10.5; 2], 10.0, 20.0);
        let s1 = site(vec![10.5; 2], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 2,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        assert!(
            plan.target_mw[0] > 9.9,
            "should not bounce: {:?}",
            plan.target_mw
        );
    }

    #[test]
    fn follows_the_sun_across_a_window() {
        // Green moves from site 0 (hours 0–1) to site 1 (hours 2–3). Site 0
        // keeps just enough green at hour 2 to power the migration out, so
        // migrating exactly at hour 2 is the unique zero-brown schedule.
        let s0 = site(vec![20.0, 20.0, 12.0, 0.0], 10.0, 20.0);
        let s1 = site(vec![0.0, 0.0, 20.0, 20.0], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        assert!(plan.trajectory_mw[0][0] > 9.9);
        assert!(
            plan.trajectory_mw[0][1] > 9.9,
            "no move before the handoff hour"
        );
        assert!(plan.trajectory_mw[1][2] > 9.9);
        assert!(plan.trajectory_mw[1][3] > 9.9);
    }

    #[test]
    fn infeasible_when_capacity_is_insufficient() {
        let s0 = site(vec![0.0; 2], 30.0, 10.0);
        let s1 = site(vec![0.0; 2], 0.0, 10.0);
        let err = Scheduler::new(SchedulerConfig {
            window_hours: 2,
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn integral_mode_quantizes_targets() {
        // Total load is 4 VMs × 0.25 MW; hour-0 targets must stay integral.
        let s0 = site(vec![0.0; 3], 1.0, 20.0);
        let s1 = site(vec![50.0; 3], 0.0, 20.0);
        let plan = Scheduler::new(SchedulerConfig {
            window_hours: 3,
            integral_vm_power_mw: Some(0.25),
            ..SchedulerConfig::default()
        })
        .plan(&[s0, s1])
        .expect("plan");
        for &t in &plan.target_mw {
            let q = t / 0.25;
            assert!((q - q.round()).abs() < 1e-5, "target {t} not integral");
        }
        let sum: f64 = plan.target_mw.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn short_forecast_is_rejected() {
        let s0 = site(vec![0.0; 2], 1.0, 2.0);
        let err = Scheduler::new(SchedulerConfig {
            window_hours: 4,
            ..SchedulerConfig::default()
        })
        .plan(&[s0])
        .unwrap_err();
        assert!(matches!(err, SolveError::InvalidModel(_)));
    }
}
