//! Deterministic fault injection for the GreenNebula emulation.
//!
//! The paper sizes the network off an analytic availability model
//! (`1 − (1−a)^n`, Uptime tier probabilities) and a survivability rule, but
//! never actually kills a site. This module turns those on-paper failure
//! assumptions into reproducible *schedules* of discrete fault events that
//! the emulation replays through its simulation kernel:
//!
//! * **Site outages** drawn from the tier availability model: each site is
//!   an independent two-state (up/down) Markov chain whose per-hour failure
//!   and repair probabilities are derived from the configured availability
//!   `a` and mean time to repair `r` (`MTBF = r·a/(1−a)`), so the long-run
//!   down fraction converges to `1 − a`.
//! * **Grid blackouts/brownouts**: the utility feed fails per-site; brown
//!   power (and the net-metering bank, which *is* the grid) is capped at a
//!   residual factor (0 = blackout) while the fault is active.
//! * **WAN degradation and partitions**: the inter-datacenter links lose
//!   bandwidth network-wide (residual factor 0 = partition), stretching or
//!   stalling migrations and evacuations.
//! * **Forecast shocks**: actual green production at a site drops to a
//!   fraction of the forecast the scheduler planned against (storms the
//!   predictor did not see).
//! * **Battery capacity fade**: stepwise derating of the usable bank,
//!   the lead-acid aging the cost model amortizes.
//!
//! Schedules are generated up front from a seed (overridable with the
//! `GC_FAULT_SEED` environment variable so CI can pin determinism), use
//! per-`(kind, site)` counter-mixed [`ChaCha8Rng`] streams — adding a fault
//! class never perturbs another class's draws — and are byte-identical
//! across replays of the same `(spec, sites, hours)`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The fault taxonomy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A whole datacenter goes dark: no IT capacity, no green plant.
    SiteOutage,
    /// The utility feed fails at one site (blackout or brownout).
    GridOutage,
    /// Inter-datacenter WAN bandwidth drops network-wide.
    WanDegraded,
    /// Actual green production falls short of the forecast at one site.
    ForecastShock,
    /// A site's battery bank permanently loses usable capacity.
    BatteryFade,
}

impl FaultKind {
    /// Stable wire name (used by the spec JSON codec).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::SiteOutage => "site_outage",
            FaultKind::GridOutage => "grid_outage",
            FaultKind::WanDegraded => "wan_degraded",
            FaultKind::ForecastShock => "forecast_shock",
            FaultKind::BatteryFade => "battery_fade",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "site_outage" => FaultKind::SiteOutage,
            "grid_outage" => FaultKind::GridOutage,
            "wan_degraded" => FaultKind::WanDegraded,
            "forecast_shock" => FaultKind::ForecastShock,
            "battery_fade" => FaultKind::BatteryFade,
            _ => return None,
        })
    }
}

/// A hand-placed fault on top of the drawn schedule (reproducible chaos
/// experiments: "kill Harare at hour 6 for 12 hours").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// What fails.
    pub kind: FaultKind,
    /// Target site index, or `None` for network-wide kinds
    /// ([`FaultKind::WanDegraded`]).
    pub site: Option<usize>,
    /// Hour (since run start) the fault sets in.
    pub start_hour: usize,
    /// Hours until it clears ([`FaultKind::BatteryFade`] never clears).
    pub duration_hours: usize,
    /// Kind-specific magnitude: residual grid/WAN factor, green factor for
    /// shocks, or remaining capacity fraction for battery fade. Ignored for
    /// site outages.
    pub magnitude: f64,
}

/// Fault-injection parameters: which failure processes run and how hard.
///
/// The default is entirely quiet (no drawn faults, nothing scheduled), so
/// `FaultSpec::default()` attached to an emulation reproduces the fault-free
/// run plus an all-zero resilience report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for the drawn fault streams (`GC_FAULT_SEED` overrides).
    pub seed: u64,
    /// Per-site availability `a ∈ (0, 1]` driving drawn site outages
    /// (e.g. Uptime Tier I = 0.9967); `None` disables them.
    pub site_availability: Option<f64>,
    /// Mean time to repair a site outage, hours.
    pub site_mttr_hours: f64,
    /// Drawn grid faults per site per 1000 hours (0 disables).
    pub grid_outage_rate_per_khour: f64,
    /// Mean time to repair a grid fault, hours.
    pub grid_mttr_hours: f64,
    /// Brown-capacity factor while a drawn grid fault is active
    /// (0 = blackout, 0.5 = brownout at half capacity).
    pub grid_residual_factor: f64,
    /// Drawn WAN incidents per 1000 hours, network-wide (0 disables).
    pub wan_outage_rate_per_khour: f64,
    /// Mean time to repair a WAN incident, hours.
    pub wan_mttr_hours: f64,
    /// Bandwidth factor during a drawn WAN incident (0 = partition).
    pub wan_residual_factor: f64,
    /// Drawn forecast shocks per site per 1000 hours (0 disables).
    pub shock_rate_per_khour: f64,
    /// Mean shock duration, hours.
    pub shock_mttr_hours: f64,
    /// Actual-green factor during a drawn shock.
    pub shock_green_factor: f64,
    /// Fractional battery capacity lost per 1000 hours (applied as
    /// stepwise monthly derating events; 0 disables).
    pub battery_fade_per_khour: f64,
    /// Hand-placed faults layered on top of the drawn streams.
    pub scheduled: Vec<ScheduledFault>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 7,
            site_availability: None,
            site_mttr_hours: 12.0,
            grid_outage_rate_per_khour: 0.0,
            grid_mttr_hours: 4.0,
            grid_residual_factor: 0.0,
            wan_outage_rate_per_khour: 0.0,
            wan_mttr_hours: 2.0,
            wan_residual_factor: 0.0,
            shock_rate_per_khour: 0.0,
            shock_mttr_hours: 6.0,
            shock_green_factor: 0.25,
            battery_fade_per_khour: 0.0,
            scheduled: Vec::new(),
        }
    }
}

impl FaultSpec {
    /// A spec drawing site outages from tier availability `a` (everything
    /// else quiet).
    pub fn tier(a: f64) -> Self {
        Self {
            site_availability: Some(a),
            ..Self::default()
        }
    }

    /// The seed actually used: `GC_FAULT_SEED` (when set and parseable)
    /// wins over the spec, so CI can pin a whole suite to one stream.
    pub fn effective_seed(&self) -> u64 {
        match std::env::var("GC_FAULT_SEED") {
            Ok(s) => s.trim().parse().unwrap_or(self.seed),
            Err(_) => self.seed,
        }
    }

    /// Validates the spec against a network of `n_sites` datacenters.
    ///
    /// # Errors
    ///
    /// A description of the first offending field.
    pub fn validate(&self, n_sites: usize) -> Result<(), String> {
        if let Some(a) = self.site_availability {
            if !(a > 0.0 && a <= 1.0) {
                return Err(format!("site availability {a} outside (0, 1]"));
            }
        }
        for (label, mttr) in [
            ("site", self.site_mttr_hours),
            ("grid", self.grid_mttr_hours),
            ("wan", self.wan_mttr_hours),
            ("shock", self.shock_mttr_hours),
        ] {
            if mttr <= 0.0 || mttr.is_nan() {
                return Err(format!("{label} MTTR {mttr} must be positive"));
            }
        }
        for (label, rate) in [
            ("grid", self.grid_outage_rate_per_khour),
            ("wan", self.wan_outage_rate_per_khour),
            ("shock", self.shock_rate_per_khour),
        ] {
            if !(0.0..=1000.0).contains(&rate) {
                return Err(format!("{label} rate {rate}/khour outside [0, 1000]"));
            }
        }
        for (label, f) in [
            ("grid residual", self.grid_residual_factor),
            ("wan residual", self.wan_residual_factor),
            ("shock green", self.shock_green_factor),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("{label} factor {f} outside [0, 1]"));
            }
        }
        if !(0.0..=1000.0).contains(&self.battery_fade_per_khour) {
            return Err(format!(
                "battery fade {}/khour outside [0, 1000]",
                self.battery_fade_per_khour
            ));
        }
        for (i, s) in self.scheduled.iter().enumerate() {
            match (s.kind, s.site) {
                (FaultKind::WanDegraded, _) => {}
                (_, Some(site)) if site < n_sites => {}
                (_, Some(site)) => {
                    return Err(format!(
                        "scheduled[{i}]: site {site} out of range (network has {n_sites})"
                    ));
                }
                (_, None) => {
                    return Err(format!(
                        "scheduled[{i}]: {} needs a target site",
                        s.kind.as_str()
                    ));
                }
            }
            if !(0.0..=1.0).contains(&s.magnitude) {
                return Err(format!(
                    "scheduled[{i}]: magnitude {} outside [0, 1]",
                    s.magnitude
                ));
            }
        }
        Ok(())
    }

    /// `true` when the spec can produce at least one fault.
    pub fn is_quiet(&self) -> bool {
        self.site_availability.is_none()
            && self.grid_outage_rate_per_khour == 0.0
            && self.wan_outage_rate_per_khour == 0.0
            && self.shock_rate_per_khour == 0.0
            && self.battery_fade_per_khour == 0.0
            && self.scheduled.is_empty()
    }
}

/// One state transition in the fault timeline. Onsets and clears are
/// separate events so overlapping faults nest (the emulation keeps depth
/// counters per affected resource).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultChange {
    /// Site goes dark.
    SiteDown {
        /// Failed site index.
        site: usize,
    },
    /// Site power/cooling restored.
    SiteUp {
        /// Recovered site index.
        site: usize,
    },
    /// Utility feed fails at a site.
    GridDown {
        /// Affected site index.
        site: usize,
        /// Residual brown-capacity factor in `[0, 1]` (0 = blackout).
        residual: f64,
    },
    /// Utility feed restored.
    GridUp {
        /// Recovered site index.
        site: usize,
    },
    /// WAN bandwidth drops network-wide.
    WanDegraded {
        /// Residual bandwidth factor in `[0, 1]` (0 = partition).
        factor: f64,
    },
    /// WAN bandwidth restored.
    WanRestored,
    /// Actual green production drops below forecast at a site.
    ShockStart {
        /// Affected site index.
        site: usize,
        /// Actual-green factor in `[0, 1]`.
        factor: f64,
    },
    /// Green production back on forecast.
    ShockEnd {
        /// Recovered site index.
        site: usize,
    },
    /// Battery bank derated to a fraction of its installed capacity
    /// (monotone in a drawn schedule; never "clears").
    BatteryFade {
        /// Affected site index.
        site: usize,
        /// Remaining usable fraction of the installed capacity.
        factor: f64,
    },
}

impl FaultChange {
    /// `true` for transitions that *start* a fault (used for incident
    /// counting; clears and fade steps return `false`).
    pub fn is_onset(&self) -> bool {
        matches!(
            self,
            FaultChange::SiteDown { .. }
                | FaultChange::GridDown { .. }
                | FaultChange::WanDegraded { .. }
                | FaultChange::ShockStart { .. }
        )
    }
}

/// A [`FaultChange`] pinned to an hour of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTransition {
    /// Hour since run start at which the change applies (before that
    /// hour's scheduling round).
    pub hour: usize,
    /// The state change.
    pub change: FaultChange,
}

/// The full, materialized fault timeline for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    /// Transitions sorted by hour; ties keep generation order (site
    /// streams first, then grid, WAN, shocks, fade, then scheduled), so
    /// replay is deterministic.
    pub transitions: Vec<FaultTransition>,
}

/// SplitMix64-style finalizer decorrelating per-`(kind, site)` streams.
fn stream_rng(seed: u64, kind: u64, site: u64) -> ChaCha8Rng {
    let mut z =
        seed ^ kind.wrapping_mul(0xA076_1D64_78BD_642F) ^ site.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

/// Simulates a two-state per-hour Markov chain (start: up) and returns the
/// hours at which it flips, as `(hour, now_down)` pairs.
fn two_state_flips(
    rng: &mut ChaCha8Rng,
    hours: usize,
    p_fail: f64,
    p_repair: f64,
) -> Vec<(usize, bool)> {
    let p_fail = p_fail.clamp(0.0, 1.0);
    let p_repair = p_repair.clamp(0.0, 1.0);
    let mut down = false;
    let mut flips = Vec::new();
    for h in 0..hours {
        let u: f64 = rng.gen();
        let flip = if down { u < p_repair } else { u < p_fail };
        if flip {
            down = !down;
            flips.push((h, down));
        }
    }
    flips
}

impl FaultSchedule {
    /// Materializes the fault timeline for `n_sites` sites over `hours`
    /// hours. Deterministic in `(spec, n_sites, hours)` and the effective
    /// seed; an empty spec yields an empty schedule.
    pub fn generate(spec: &FaultSpec, n_sites: usize, hours: usize) -> Self {
        let seed = spec.effective_seed();
        let mut out: Vec<FaultTransition> = Vec::new();

        // Drawn site outages: availability a and MTTR r give the per-hour
        // chain p_repair = 1/r, p_fail = p_repair·(1−a)/a, whose stationary
        // down fraction is exactly 1−a.
        if let Some(a) = spec.site_availability {
            if a < 1.0 {
                let p_repair = 1.0 / spec.site_mttr_hours;
                let p_fail = p_repair * (1.0 - a) / a;
                for site in 0..n_sites {
                    let mut rng = stream_rng(seed, 1, site as u64);
                    for (hour, down) in two_state_flips(&mut rng, hours, p_fail, p_repair) {
                        let change = if down {
                            FaultChange::SiteDown { site }
                        } else {
                            FaultChange::SiteUp { site }
                        };
                        out.push(FaultTransition { hour, change });
                    }
                }
            }
        }

        // Drawn grid faults per site.
        if spec.grid_outage_rate_per_khour > 0.0 {
            let p_fail = spec.grid_outage_rate_per_khour / 1000.0;
            let p_repair = 1.0 / spec.grid_mttr_hours;
            for site in 0..n_sites {
                let mut rng = stream_rng(seed, 2, site as u64);
                for (hour, down) in two_state_flips(&mut rng, hours, p_fail, p_repair) {
                    let change = if down {
                        FaultChange::GridDown {
                            site,
                            residual: spec.grid_residual_factor,
                        }
                    } else {
                        FaultChange::GridUp { site }
                    };
                    out.push(FaultTransition { hour, change });
                }
            }
        }

        // Drawn WAN incidents, one network-wide chain.
        if spec.wan_outage_rate_per_khour > 0.0 {
            let p_fail = spec.wan_outage_rate_per_khour / 1000.0;
            let p_repair = 1.0 / spec.wan_mttr_hours;
            let mut rng = stream_rng(seed, 3, u64::MAX);
            for (hour, down) in two_state_flips(&mut rng, hours, p_fail, p_repair) {
                let change = if down {
                    FaultChange::WanDegraded {
                        factor: spec.wan_residual_factor,
                    }
                } else {
                    FaultChange::WanRestored
                };
                out.push(FaultTransition { hour, change });
            }
        }

        // Drawn forecast shocks per site.
        if spec.shock_rate_per_khour > 0.0 {
            let p_fail = spec.shock_rate_per_khour / 1000.0;
            let p_repair = 1.0 / spec.shock_mttr_hours;
            for site in 0..n_sites {
                let mut rng = stream_rng(seed, 4, site as u64);
                for (hour, down) in two_state_flips(&mut rng, hours, p_fail, p_repair) {
                    let change = if down {
                        FaultChange::ShockStart {
                            site,
                            factor: spec.shock_green_factor,
                        }
                    } else {
                        FaultChange::ShockEnd { site }
                    };
                    out.push(FaultTransition { hour, change });
                }
            }
        }

        // Battery fade: stepwise monthly derating, purely deterministic.
        if spec.battery_fade_per_khour > 0.0 {
            let mut hour = 720;
            while hour < hours {
                let factor = (1.0 - spec.battery_fade_per_khour * hour as f64 / 1000.0).max(0.0);
                for site in 0..n_sites {
                    out.push(FaultTransition {
                        hour,
                        change: FaultChange::BatteryFade { site, factor },
                    });
                }
                hour += 720;
            }
        }

        // Hand-placed faults (validated upstream).
        for s in &spec.scheduled {
            let site = s.site.unwrap_or(0);
            let (onset, clear) = match s.kind {
                FaultKind::SiteOutage => (
                    FaultChange::SiteDown { site },
                    Some(FaultChange::SiteUp { site }),
                ),
                FaultKind::GridOutage => (
                    FaultChange::GridDown {
                        site,
                        residual: s.magnitude,
                    },
                    Some(FaultChange::GridUp { site }),
                ),
                FaultKind::WanDegraded => (
                    FaultChange::WanDegraded {
                        factor: s.magnitude,
                    },
                    Some(FaultChange::WanRestored),
                ),
                FaultKind::ForecastShock => (
                    FaultChange::ShockStart {
                        site,
                        factor: s.magnitude,
                    },
                    Some(FaultChange::ShockEnd { site }),
                ),
                FaultKind::BatteryFade => (
                    FaultChange::BatteryFade {
                        site,
                        factor: s.magnitude,
                    },
                    None,
                ),
            };
            if s.start_hour < hours {
                out.push(FaultTransition {
                    hour: s.start_hour,
                    change: onset,
                });
                if let Some(clear) = clear {
                    let end = s.start_hour.saturating_add(s.duration_hours);
                    if end < hours {
                        out.push(FaultTransition {
                            hour: end,
                            change: clear,
                        });
                    }
                }
            }
        }

        out.sort_by_key(|t| t.hour); // stable: ties keep generation order
        FaultSchedule { transitions: out }
    }

    /// Fraction of `[0, hours)` site `site` spends dark, by replaying the
    /// timeline with the same depth counting the emulation uses.
    pub fn site_down_fraction(&self, site: usize, hours: usize) -> f64 {
        if hours == 0 {
            return 0.0;
        }
        let mut depth = 0u32;
        let mut down_hours = 0usize;
        let mut cursor = 0usize;
        let advance = |from: usize, to: usize, depth: u32, down: &mut usize| {
            if depth > 0 {
                *down += to - from;
            }
        };
        for t in &self.transitions {
            let h = t.hour.min(hours);
            advance(cursor, h, depth, &mut down_hours);
            cursor = h;
            if t.hour >= hours {
                break;
            }
            match t.change {
                FaultChange::SiteDown { site: s } if s == site => depth += 1,
                FaultChange::SiteUp { site: s } if s == site => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        advance(cursor, hours, depth, &mut down_hours);
        down_hours as f64 / hours as f64
    }

    /// Number of onset transitions (incident starts) in the timeline.
    pub fn onsets(&self) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.change.is_onset())
            .count()
    }
}

/// Resilience statistics accumulated by a fault-injected emulation run
/// (the payload of the `greencloud-resilience/1` report body).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Fault transitions applied during the run (onsets + clears + fade
    /// steps).
    pub fault_events: usize,
    /// Site-outage incidents that set in.
    pub site_outages: usize,
    /// Grid-fault incidents that set in.
    pub grid_outages: usize,
    /// WAN-degradation incidents that set in.
    pub wan_outages: usize,
    /// Forecast-shock incidents that set in.
    pub forecast_shocks: usize,
    /// Total site-hours spent dark.
    pub site_down_hours: f64,
    /// VM-hours lost to evacuation transfers and parking.
    pub vm_downtime_hours: f64,
    /// VM-hours spent parked because no surviving site had headroom (or
    /// the WAN was partitioned) — demand the degraded network shed.
    pub shed_vm_hours: f64,
    /// Emergency evacuation transfers started.
    pub evacuations: usize,
    /// Data shipped by evacuations, GB.
    pub evacuated_gb: f64,
    /// Displaced VMs restored to service.
    pub recoveries: usize,
    /// Mean time from displacement to restored service, hours (0 when
    /// nothing was displaced).
    pub mean_recovery_hours: f64,
    /// Served VM-hours over requested VM-hours, in `[0, 1]` — the
    /// empirical SLO attainment.
    pub slo_attainment: f64,
    /// Energy demand that could not be served at all (grid dark, storage
    /// empty), MWh.
    pub unserved_mwh: f64,
    /// Brown energy consumed during hours with at least one active fault,
    /// MWh.
    pub incident_brown_mwh: f64,
    /// Retail cost of that incident brown energy, USD.
    pub incident_cost_usd: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_spec_yields_empty_schedule() {
        let spec = FaultSpec::default();
        assert!(spec.is_quiet());
        let s = FaultSchedule::generate(&spec, 3, 8760);
        assert!(s.transitions.is_empty());
        assert_eq!(s.site_down_fraction(0, 8760), 0.0);
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let spec = FaultSpec {
            grid_outage_rate_per_khour: 5.0,
            wan_outage_rate_per_khour: 2.0,
            shock_rate_per_khour: 3.0,
            ..FaultSpec::tier(0.9967)
        };
        let a = FaultSchedule::generate(&spec, 3, 2000);
        let b = FaultSchedule::generate(&spec, 3, 2000);
        assert_eq!(a, b);
        let other = FaultSchedule::generate(
            &FaultSpec {
                seed: 8,
                ..spec.clone()
            },
            3,
            2000,
        );
        assert_ne!(a, other, "different seeds draw different timelines");
    }

    #[test]
    fn transitions_alternate_and_are_sorted() {
        let spec = FaultSpec::tier(0.98); // failure-heavy for density
        let s = FaultSchedule::generate(&spec, 2, 5000);
        assert!(!s.transitions.is_empty());
        assert!(
            s.transitions.windows(2).all(|w| w[0].hour <= w[1].hour),
            "sorted by hour"
        );
        // Per site, down/up must strictly alternate starting with down.
        for site in 0..2 {
            let mut down = false;
            for t in &s.transitions {
                match t.change {
                    FaultChange::SiteDown { site: x } if x == site => {
                        assert!(!down, "double down at hour {}", t.hour);
                        down = true;
                    }
                    FaultChange::SiteUp { site: x } if x == site => {
                        assert!(down, "up without down at hour {}", t.hour);
                        down = false;
                    }
                    _ => {}
                }
            }
        }
    }

    /// The statistical acceptance check at schedule level: over many
    /// simulated site-years, the drawn down fraction must match `1 − a`
    /// within generous confidence bounds (down-time arrives in geometric
    /// runs of mean `MTTR`, so the effective sample is `N/MTTR`; the
    /// [0.6, 1.4]× band is ≈ 4σ at this size for any seed).
    #[test]
    fn outage_frequency_matches_tier_availability() {
        let a = 0.9967; // Uptime Tier I
        let spec = FaultSpec::tier(a);
        let sites = 50;
        let hours = 8760;
        let s = FaultSchedule::generate(&spec, sites, hours);
        let mean_down: f64 = (0..sites)
            .map(|i| s.site_down_fraction(i, hours))
            .sum::<f64>()
            / sites as f64;
        let expected = 1.0 - a;
        assert!(
            mean_down > 0.6 * expected && mean_down < 1.4 * expected,
            "drawn unavailability {mean_down:.5} vs expected {expected:.5}"
        );
        assert!(s.onsets() > 0, "a tier-I year draws real incidents");
    }

    #[test]
    fn scheduled_faults_are_placed_verbatim() {
        let spec = FaultSpec {
            scheduled: vec![
                ScheduledFault {
                    kind: FaultKind::SiteOutage,
                    site: Some(1),
                    start_hour: 6,
                    duration_hours: 12,
                    magnitude: 0.0,
                },
                ScheduledFault {
                    kind: FaultKind::WanDegraded,
                    site: None,
                    start_hour: 2,
                    duration_hours: 3,
                    magnitude: 0.5,
                },
                ScheduledFault {
                    kind: FaultKind::BatteryFade,
                    site: Some(0),
                    start_hour: 10,
                    duration_hours: 0,
                    magnitude: 0.8,
                },
            ],
            ..FaultSpec::default()
        };
        assert!(spec.validate(3).is_ok());
        let s = FaultSchedule::generate(&spec, 3, 24);
        assert_eq!(s.transitions.len(), 5, "2 onsets + 2 clears + 1 fade");
        assert_eq!(s.site_down_fraction(1, 24), 12.0 / 24.0);
        assert_eq!(s.site_down_fraction(0, 24), 0.0);
        assert!(s
            .transitions
            .iter()
            .any(|t| t.change == FaultChange::WanDegraded { factor: 0.5 } && t.hour == 2));
        assert!(s
            .transitions
            .iter()
            .any(|t| t.change == FaultChange::WanRestored && t.hour == 5));
        assert!(s.transitions.iter().any(|t| t.change
            == FaultChange::BatteryFade {
                site: 0,
                factor: 0.8
            }));
    }

    #[test]
    fn outage_spanning_the_horizon_never_clears() {
        let spec = FaultSpec {
            scheduled: vec![ScheduledFault {
                kind: FaultKind::SiteOutage,
                site: Some(0),
                start_hour: 20,
                duration_hours: 100,
                magnitude: 0.0,
            }],
            ..FaultSpec::default()
        };
        let s = FaultSchedule::generate(&spec, 1, 24);
        assert_eq!(s.transitions.len(), 1, "clear falls past the horizon");
        assert_eq!(s.site_down_fraction(0, 24), 4.0 / 24.0);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(FaultSpec::tier(1.5).validate(3).is_err());
        assert!(FaultSpec::tier(0.0).validate(3).is_err());
        let bad_site = FaultSpec {
            scheduled: vec![ScheduledFault {
                kind: FaultKind::SiteOutage,
                site: Some(9),
                start_hour: 0,
                duration_hours: 1,
                magnitude: 0.0,
            }],
            ..FaultSpec::default()
        };
        assert!(bad_site.validate(3).is_err());
        let no_site = FaultSpec {
            scheduled: vec![ScheduledFault {
                kind: FaultKind::GridOutage,
                site: None,
                start_hour: 0,
                duration_hours: 1,
                magnitude: 0.0,
            }],
            ..FaultSpec::default()
        };
        assert!(no_site.validate(3).is_err());
        let bad_mttr = FaultSpec {
            site_mttr_hours: 0.0,
            ..FaultSpec::default()
        };
        assert!(bad_mttr.validate(3).is_err());
        assert!(FaultSpec::tier(1.0).validate(3).is_ok(), "a == 1 is quiet");
        assert!(
            FaultSchedule::generate(&FaultSpec::tier(1.0), 3, 100)
                .transitions
                .is_empty(),
            "perfect availability draws nothing"
        );
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            FaultKind::SiteOutage,
            FaultKind::GridOutage,
            FaultKind::WanDegraded,
            FaultKind::ForecastShock,
            FaultKind::BatteryFade,
        ] {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultKind::parse("meteor_strike"), None);
    }
}
