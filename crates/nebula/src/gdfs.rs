//! GDFS: GreenNebula's mutation-capable distributed file system (§V-A).
//!
//! Design per the paper: one master holding name bindings and metadata
//! (HDFS-like), data blocks replicated across datacenters, **with file
//! mutation**: a write updates the local replica and invalidates the remote
//! replicas at the master; written blocks are re-replicated in the
//! background. A migrating VM therefore only ships the recently-modified
//! blocks that have not yet been re-replicated.

use crate::cluster::DatacenterId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Block size, MB (HDFS-style large blocks).
pub const BLOCK_MB: f64 = 64.0;

/// Identifier of a file in the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Identifier of a block within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId {
    /// Owning file.
    pub file: FileId,
    /// Block index within the file.
    pub index: u32,
}

#[derive(Debug, Clone)]
struct BlockMeta {
    /// Datacenters holding a replica at the current version.
    valid: BTreeSet<DatacenterId>,
    /// Monotonic version, bumped on every write.
    version: u64,
    /// Last written payload (emulation keeps only the latest).
    data: Bytes,
}

/// A pending background re-replication task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationTask {
    /// Block to copy.
    pub block: BlockId,
    /// Source (holds a valid replica).
    pub from: DatacenterId,
    /// Destination (stale or missing).
    pub to: DatacenterId,
}

/// The GDFS master: namespace, block metadata, and the re-replication queue.
#[derive(Debug, Default)]
pub struct GdfsMaster {
    files: BTreeMap<FileId, u32>, // file → block count
    blocks: BTreeMap<BlockId, BlockMeta>,
    replication_factor: usize,
    queue: VecDeque<ReplicationTask>,
    datacenters: Vec<DatacenterId>,
}

impl GdfsMaster {
    /// Creates a master for the given datacenters with a replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `replication_factor` is zero or exceeds the datacenter
    /// count.
    pub fn new(datacenters: Vec<DatacenterId>, replication_factor: usize) -> Self {
        assert!(replication_factor >= 1, "need at least one replica");
        assert!(
            replication_factor <= datacenters.len(),
            "more replicas than datacenters"
        );
        Self {
            files: BTreeMap::new(),
            blocks: BTreeMap::new(),
            replication_factor,
            queue: VecDeque::new(),
            datacenters,
        }
    }

    /// Creates a file of `blocks` blocks, fully replicated at `home` plus
    /// the next `replication_factor − 1` datacenters.
    pub fn create_file(&mut self, file: FileId, blocks: u32, home: DatacenterId) -> bool {
        if self.files.contains_key(&file) {
            return false;
        }
        self.files.insert(file, blocks);
        let mut replicas = BTreeSet::new();
        replicas.insert(home);
        for dc in self.datacenters.iter().copied() {
            if replicas.len() >= self.replication_factor {
                break;
            }
            replicas.insert(dc);
        }
        for index in 0..blocks {
            self.blocks.insert(
                BlockId { file, index },
                BlockMeta {
                    valid: replicas.clone(),
                    version: 0,
                    data: Bytes::new(),
                },
            );
        }
        true
    }

    /// Writes a block at `dc`: the local replica becomes the only valid
    /// one, remote replicas are invalidated, and re-replication tasks are
    /// queued (the paper's write path).
    ///
    /// Returns the new version, or `None` for an unknown block.
    pub fn write(&mut self, block: BlockId, dc: DatacenterId, data: Bytes) -> Option<u64> {
        let meta = self.blocks.get_mut(&block)?;
        meta.version += 1;
        meta.data = data;
        meta.valid.clear();
        meta.valid.insert(dc);
        // Queue background re-replication to the other datacenters, up to
        // the replication factor.
        let mut queued = 1;
        for other in self.datacenters.clone() {
            if other != dc && queued < self.replication_factor {
                self.queue.push_back(ReplicationTask {
                    block,
                    from: dc,
                    to: other,
                });
                queued += 1;
            }
        }
        Some(meta.version)
    }

    /// Reads a block from `dc`. Returns `(data, remote_fetch)`: when the
    /// local replica is stale/missing the read is served by a valid remote
    /// replica (`remote_fetch = true`).
    pub fn read(&self, block: BlockId, dc: DatacenterId) -> Option<(Bytes, bool)> {
        let meta = self.blocks.get(&block)?;
        let local = meta.valid.contains(&dc);
        Some((meta.data.clone(), !local))
    }

    /// Pops and applies the next background re-replication task; the block
    /// becomes valid at the destination. Returns the task, or `None` when
    /// the queue is empty.
    pub fn replicate_step(&mut self) -> Option<ReplicationTask> {
        while let Some(task) = self.queue.pop_front() {
            let meta = self.blocks.get_mut(&task.block)?;
            // Skip stale tasks: the source must still hold a valid replica.
            if meta.valid.contains(&task.from) {
                meta.valid.insert(task.to);
                return Some(task);
            }
        }
        None
    }

    /// Pending re-replication tasks.
    pub fn pending_replications(&self) -> usize {
        self.queue.len()
    }

    /// Megabytes of `file`'s blocks that are valid **only** at `dc` — the
    /// data a VM migration must carry along (the paper's migration payload
    /// rule).
    pub fn unreplicated_mb(&self, file: FileId, dc: DatacenterId) -> f64 {
        let Some(&blocks) = self.files.get(&file) else {
            return 0.0;
        };
        let mut count = 0u32;
        for index in 0..blocks {
            if let Some(meta) = self.blocks.get(&BlockId { file, index }) {
                if meta.valid.len() == 1 && meta.valid.contains(&dc) {
                    count += 1;
                }
            }
        }
        count as f64 * BLOCK_MB
    }

    /// Marks every solely-`from`-valid block of `file` as migrated to `to`
    /// (called when a VM move completes).
    pub fn transfer_unique_blocks(&mut self, file: FileId, from: DatacenterId, to: DatacenterId) {
        let Some(&blocks) = self.files.get(&file) else {
            return;
        };
        for index in 0..blocks {
            if let Some(meta) = self.blocks.get_mut(&BlockId { file, index }) {
                if meta.valid.len() == 1 && meta.valid.contains(&from) {
                    meta.valid.insert(to);
                }
            }
        }
    }

    /// Number of valid replicas of a block (tests/invariants).
    pub fn replica_count(&self, block: BlockId) -> usize {
        self.blocks.get(&block).map_or(0, |m| m.valid.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> GdfsMaster {
        GdfsMaster::new(vec![DatacenterId(0), DatacenterId(1), DatacenterId(2)], 2)
    }

    const F: FileId = FileId(1);

    #[test]
    fn create_replicates_to_factor() {
        let mut m = master();
        assert!(m.create_file(F, 4, DatacenterId(1)));
        assert!(!m.create_file(F, 4, DatacenterId(1)), "no duplicate files");
        for i in 0..4 {
            assert_eq!(m.replica_count(BlockId { file: F, index: i }), 2);
        }
    }

    #[test]
    fn write_invalidates_remotes_and_queues_replication() {
        let mut m = master();
        m.create_file(F, 2, DatacenterId(0));
        let b = BlockId { file: F, index: 0 };
        let v = m
            .write(b, DatacenterId(2), Bytes::from_static(b"new"))
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(m.replica_count(b), 1, "only the writer holds validity");
        assert!(m.pending_replications() > 0);
        // Read at a stale site goes remote but sees the latest data.
        let (data, remote) = m.read(b, DatacenterId(0)).unwrap();
        assert!(remote);
        assert_eq!(&data[..], b"new");
        // Read at the writer is local.
        let (_, remote) = m.read(b, DatacenterId(2)).unwrap();
        assert!(!remote);
    }

    #[test]
    fn background_replication_restores_factor() {
        let mut m = master();
        m.create_file(F, 1, DatacenterId(0));
        let b = BlockId { file: F, index: 0 };
        m.write(b, DatacenterId(1), Bytes::from_static(b"x"))
            .unwrap();
        assert_eq!(m.replica_count(b), 1);
        let task = m.replicate_step().expect("task queued");
        assert_eq!(task.from, DatacenterId(1));
        assert_eq!(m.replica_count(b), 2);
        assert!(m.replicate_step().is_none());
    }

    #[test]
    fn stale_replication_tasks_are_skipped() {
        let mut m = master();
        m.create_file(F, 1, DatacenterId(0));
        let b = BlockId { file: F, index: 0 };
        m.write(b, DatacenterId(1), Bytes::from_static(b"a"))
            .unwrap();
        // Second write at a different site makes the first task stale.
        m.write(b, DatacenterId(2), Bytes::from_static(b"b"))
            .unwrap();
        while m.replicate_step().is_some() {}
        // All applied tasks must have come from currently-valid sources:
        // the final state holds the latest data everywhere it is valid.
        let (data, _) = m.read(b, DatacenterId(2)).unwrap();
        assert_eq!(&data[..], b"b");
    }

    #[test]
    fn migration_payload_counts_only_unique_blocks() {
        let mut m = master();
        m.create_file(F, 4, DatacenterId(0));
        assert_eq!(m.unreplicated_mb(F, DatacenterId(0)), 0.0);
        // Dirty two blocks locally.
        m.write(BlockId { file: F, index: 0 }, DatacenterId(0), Bytes::new());
        m.write(BlockId { file: F, index: 3 }, DatacenterId(0), Bytes::new());
        assert_eq!(m.unreplicated_mb(F, DatacenterId(0)), 2.0 * BLOCK_MB);
        // After background replication the payload shrinks to zero.
        while m.replicate_step().is_some() {}
        assert_eq!(m.unreplicated_mb(F, DatacenterId(0)), 0.0);
    }

    #[test]
    fn transfer_marks_blocks_at_destination() {
        let mut m = master();
        m.create_file(F, 2, DatacenterId(0));
        m.write(BlockId { file: F, index: 1 }, DatacenterId(0), Bytes::new());
        m.transfer_unique_blocks(F, DatacenterId(0), DatacenterId(2));
        assert_eq!(m.unreplicated_mb(F, DatacenterId(0)), 0.0);
        let (_, remote) = m
            .read(BlockId { file: F, index: 1 }, DatacenterId(2))
            .unwrap();
        assert!(!remote, "destination now holds a valid replica");
    }

    #[test]
    fn read_your_writes_sequence() {
        // Invariant: after any write sequence, reading anywhere returns the
        // last written payload.
        let mut m = master();
        m.create_file(F, 1, DatacenterId(0));
        let b = BlockId { file: F, index: 0 };
        for (i, dc) in [0u32, 1, 2, 1, 0].iter().enumerate() {
            let payload = Bytes::from(format!("v{i}"));
            m.write(b, DatacenterId(*dc), payload.clone());
            for reader in 0..3 {
                let (data, _) = m.read(b, DatacenterId(reader)).unwrap();
                assert_eq!(data, payload, "reader {reader} after write {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "more replicas than datacenters")]
    fn replication_factor_validated() {
        GdfsMaster::new(vec![DatacenterId(0)], 3);
    }
}
