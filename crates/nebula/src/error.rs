//! The nebula crate's typed error: emulation and sweep failures that used
//! to be panics or shoehorned [`SolveError::InvalidModel`]s.

use greencloud_lp::SolveError;
use std::fmt;

/// Any failure of the GreenNebula emulation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum NebulaError {
    /// The hourly re-partitioning optimization failed even after the
    /// graceful-degradation retry ladder (cold restart, rebuild,
    /// escalating tolerances).
    Solve(SolveError),
    /// The emulation configuration is out of range (bad battery
    /// efficiency, invalid fault spec, no sites, …).
    Config(String),
    /// A configured site name is not in the engine's world catalog.
    UnknownSite(String),
    /// The run was cancelled cooperatively (deadline or caller abort)
    /// before completing.
    Cancelled,
}

impl fmt::Display for NebulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NebulaError::Solve(e) => write!(f, "scheduler solve failed: {e}"),
            NebulaError::Config(msg) => write!(f, "invalid emulation config: {msg}"),
            NebulaError::UnknownSite(name) => write!(f, "unknown site {name}"),
            NebulaError::Cancelled => write!(f, "emulation cancelled"),
        }
    }
}

impl std::error::Error for NebulaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NebulaError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for NebulaError {
    fn from(e: SolveError) -> Self {
        NebulaError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: NebulaError = SolveError::Infeasible.into();
        assert!(e.to_string().contains("infeasible") || e.to_string().contains("Infeasible"));
        assert_eq!(
            NebulaError::UnknownSite("Atlantis".into()).to_string(),
            "unknown site Atlantis"
        );
        assert_eq!(NebulaError::Cancelled.to_string(), "emulation cancelled");
        assert!(NebulaError::Config("no sites".into())
            .to_string()
            .contains("no sites"));
    }
}
