//! The §V-C experiment generalized: an N-datacenter network following the
//! sun for anything from a day to a year.
//!
//! Reproduces the paper's validation setup at simulation scale: the Table
//! III network (Mexico City, Andersen/Guam, Harare — chosen so that local
//! daytime covers the whole UTC day), massively overbuilt solar. Every hour
//! the scheduler re-partitions load against the 48-hour green forecast and
//! the planner migrates VMs donor→closest-receiver, smallest footprint
//! first. The hourly optimization runs on a [`RollingScheduler`]: one
//! persistent LP whose forecast coefficients are shifted in place each
//! round and whose solves warm-start from the previous hour's basis.
//!
//! Energy accounting follows the paper, extended with the storage models
//! the siting LP already assumes. Demand per site-hour is PUE-scaled IT
//! load plus migration overhead; it is dispatched strictly in the order
//! **green → battery → banked net-meter credit → brown**, with surplus
//! green first charging the (lossy) battery and then pushing into the
//! net-metering bank. Migrated load consumes at the donor for the
//! migration fraction of *every* epoch the transfer spans (slow WAN links
//! stretch a live migration across hours), and migration completions are
//! discrete [`greencloud_simkernel`] events, so block transfers, battery
//! state, and re-replication interleave deterministically.
//!
//! GDFS runs underneath: each VM dirties its file hourly; the unreplicated
//! blocks determine each migration's payload, and background re-replication
//! drains between rounds.
//!
//! With a [`FaultSpec`] attached, a seeded [`FaultSchedule`] replays
//! through the same kernel: site outages evacuate VMs to surviving sites
//! (cold restart from replicas, parking them when no capacity or WAN path
//! exists), grid blackouts cap brown supply and strand demand as unserved
//! energy, forecast shocks cut actual green below the plan, and battery
//! fade derates the banks. The run then carries a [`ResilienceReport`]
//! with SLO attainment, downtime, recovery times, and the brown-energy and
//! dollar cost of the incidents.

use crate::cluster::{Datacenter, DatacenterId};
use crate::error::NebulaError;
use crate::faults::{FaultChange, FaultSchedule, FaultSpec, ResilienceReport};
use crate::gdfs::{BlockId, FileId, GdfsMaster, BLOCK_MB};
use crate::planner::plan_migrations;
use crate::predictor::{GreenPredictor, PredictionMode};
use crate::scheduler::{RollingScheduler, RollingStats, SchedulerConfig, SiteState};
use crate::vm::{Vm, VmId, VmSpec};
use crate::wan::WanModel;
use bytes::Bytes;
use greencloud_climate::catalog::WorldCatalog;
use greencloud_energy::battery::Battery;
use greencloud_energy::netmeter::NetMeter;
use greencloud_energy::profile::EnergyProfile;
use greencloud_energy::pue::PueModel;
use greencloud_energy::pv::PvModel;
use greencloud_energy::windturbine::Turbine;
use greencloud_simkernel::{Engine, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// One emulated site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationSite {
    /// Catalog name substring identifying the location (e.g. "Harare").
    pub location_name: String,
    /// Installed solar, MW.
    pub solar_mw: f64,
    /// Installed wind, MW.
    pub wind_mw: f64,
    /// IT capacity, MW.
    pub capacity_mw: f64,
    /// Installed battery bank, kWh (0 = no storage at this site).
    pub battery_kwh: f64,
}

/// Emulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationConfig {
    /// Total IT load, MW (the paper's 50 MW requirement).
    pub total_load_mw: f64,
    /// Number of VMs carrying the load.
    pub vm_count: u32,
    /// Emulated duration, hours (8760 for a full TMY year).
    pub hours: usize,
    /// First TMY hour of the run (picks the emulated day/season).
    pub start_hour: usize,
    /// Sites (Table III by default).
    pub sites: Vec<EmulationSite>,
    /// Scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// WAN link model.
    pub wan: WanModel,
    /// Battery charge efficiency for every site bank (the paper's
    /// lead-acid 75% by default).
    pub battery_efficiency: f64,
    /// `Some(credit_fraction)` enables per-site net metering: surplus
    /// green is banked with the grid and drawn back (1:1, before buying
    /// brown). The fraction is monetary only — it scales the push credits
    /// in [`EmulationReport::energy_settlement_usd`], not the physics.
    pub net_meter_credit: Option<f64>,
    /// Green-production forecast quality fed to the scheduler.
    pub prediction: PredictionMode,
    /// Deterministic fault injection (`None` = the paper's fault-free
    /// world). When set, the run degrades gracefully and reports a
    /// [`ResilienceReport`].
    pub faults: Option<FaultSpec>,
}

impl Default for EmulationConfig {
    /// The paper's Table III network and §V-C workload, scaled to 50 MW:
    /// no storage, no net metering, perfect prediction.
    fn default() -> Self {
        Self {
            total_load_mw: 50.0,
            vm_count: 200,
            hours: 24,
            start_hour: 24 * 170, // a (northern) summer day
            sites: vec![
                EmulationSite {
                    location_name: "Mexico City".into(),
                    solar_mw: 327.7,
                    wind_mw: 0.009,
                    capacity_mw: 50.0,
                    battery_kwh: 0.0,
                },
                EmulationSite {
                    location_name: "Andersen".into(),
                    solar_mw: 375.4,
                    wind_mw: 38.0,
                    capacity_mw: 50.0,
                    battery_kwh: 0.0,
                },
                EmulationSite {
                    location_name: "Harare".into(),
                    solar_mw: 396.7,
                    wind_mw: 0.0208,
                    capacity_mw: 50.0,
                    battery_kwh: 0.0,
                },
            ],
            scheduler: SchedulerConfig::default(),
            wan: WanModel::leased(10_000.0),
            battery_efficiency: Battery::DEFAULT_EFFICIENCY,
            net_meter_credit: None,
            prediction: PredictionMode::Perfect,
            faults: None,
        }
    }
}

impl EmulationConfig {
    /// Installs `kwh` of battery at every site.
    pub fn with_batteries(mut self, kwh: f64) -> Self {
        for s in &mut self.sites {
            s.battery_kwh = kwh;
        }
        self
    }

    /// Attaches a fault-injection spec.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// One datacenter-hour of the Fig. 15 trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Hour since the start of the run.
    pub hour: usize,
    /// Site index (order of `EmulationConfig::sites`).
    pub dc: usize,
    /// Green power available, MW.
    pub green_available_mw: f64,
    /// IT load hosted, MW.
    pub load_mw: f64,
    /// Cooling/power overhead (PUE − 1 share), MW.
    pub pue_overhead_mw: f64,
    /// Migration energy overhead, MW.
    pub migration_mw: f64,
    /// Surplus green consumed charging the battery (source side), MW.
    pub battery_charge_mw: f64,
    /// Battery energy delivered to the load, MW.
    pub battery_discharge_mw: f64,
    /// Surplus green pushed into the net-metering bank, MW.
    pub net_push_mw: f64,
    /// Banked energy drawn back from the net meter, MW.
    pub net_draw_mw: f64,
    /// Battery state of charge at the end of the hour, in `[0, 1]`.
    pub battery_soc: f64,
    /// Brown power drawn, MW.
    pub brown_mw: f64,
}

/// One executed VM migration (the report's audit log).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Hour the migration started.
    pub hour: usize,
    /// The VM moved.
    pub vm: VmId,
    /// Donor site index.
    pub from: usize,
    /// Receiver site index.
    pub to: usize,
    /// Live-migration duration over the WAN, hours.
    pub duration_hours: f64,
    /// Payload shipped (memory + unreplicated blocks), GB.
    pub payload_gb: f64,
}

/// Result of an emulation run.
///
/// Equality is exact on every simulated quantity ([`RollingStats`] excludes
/// its wall-clock field), so two runs of one config compare equal iff they
/// are deterministic replays of each other.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Per datacenter-hour rows (Fig. 15's series).
    pub rows: Vec<TraceRow>,
    /// Total brown energy, MWh.
    pub total_brown_mwh: f64,
    /// Total demand, MWh.
    pub total_demand_mwh: f64,
    /// Fraction of demand served green.
    pub green_fraction: f64,
    /// Number of VM migrations executed.
    pub migrations: usize,
    /// Total migration payload shipped, GB.
    pub migrated_gb: f64,
    /// Mean live-migration duration, hours.
    pub mean_migration_hours: f64,
    /// Peak number of concurrently in-flight migrations.
    pub peak_inflight_migrations: usize,
    /// Every executed migration, in execution order.
    pub migration_log: Vec<MigrationRecord>,
    /// GDFS blocks re-replicated in the background.
    pub rereplicated_blocks: usize,
    /// Green energy consumed charging batteries (source side), MWh.
    pub battery_in_mwh: f64,
    /// Battery energy delivered to loads, MWh.
    pub battery_out_mwh: f64,
    /// Green energy pushed into net-metering banks, MWh.
    pub net_pushed_mwh: f64,
    /// Banked energy drawn back, MWh.
    pub net_drawn_mwh: f64,
    /// Annual true-up cost of grid energy: per-site (drawn + brown) kWh at
    /// the local retail price, minus net-metering push credits at the
    /// configured credit fraction (capped — no cash-out), USD.
    pub energy_settlement_usd: f64,
    /// How the rolling scheduler spent its solves (warm-start counters).
    pub scheduler_stats: RollingStats,
    /// Resilience accounting, present iff the config injected faults.
    pub resilience: Option<ResilienceReport>,
}

/// Discrete events flowing through the simulation kernel.
#[derive(Debug, Clone, Copy)]
enum NebulaEvent {
    /// A live migration's stop-and-copy finished: the unreplicated blocks
    /// land at the receiver.
    MigrationDone {
        file: FileId,
        from: DatacenterId,
        to: DatacenterId,
    },
    /// A fault-timeline transition takes effect (before that hour's
    /// scheduling round — fault events are scheduled first, so among
    /// same-time events they pop ahead of transfer completions).
    Fault(FaultChange),
    /// An evacuation replay finished: the VM restarts at the receiver if
    /// it is still up (otherwise it re-parks).
    EvacuationDone { job: usize },
}

/// Live fault state: depth counters per resource so overlapping faults
/// nest — a resource recovers only when every fault affecting it clears.
struct FaultRuntime {
    site_down: Vec<u32>,
    grid_down: Vec<u32>,
    grid_residual: Vec<f64>,
    shock: Vec<u32>,
    shock_factor: Vec<f64>,
    wan_down: u32,
    wan_factor: f64,
}

impl FaultRuntime {
    fn new(n: usize) -> Self {
        Self {
            site_down: vec![0; n],
            grid_down: vec![0; n],
            grid_residual: vec![1.0; n],
            shock: vec![0; n],
            shock_factor: vec![1.0; n],
            wan_down: 0,
            wan_factor: 1.0,
        }
    }

    fn site_up(&self, i: usize) -> bool {
        self.site_down[i] == 0
    }

    /// Residual brown-supply factor at site `i` (1 = healthy grid).
    fn grid_factor(&self, i: usize) -> f64 {
        if self.grid_down[i] > 0 {
            self.grid_residual[i]
        } else {
            1.0
        }
    }

    /// Actual-vs-forecast green factor at site `i` (1 = on forecast).
    fn green_factor(&self, i: usize) -> f64 {
        if self.shock[i] > 0 {
            self.shock_factor[i]
        } else {
            1.0
        }
    }

    /// Network-wide WAN bandwidth factor (1 = healthy, 0 = partition).
    fn wan_bw_factor(&self) -> f64 {
        if self.wan_down > 0 {
            self.wan_factor
        } else {
            1.0
        }
    }

    /// Any incident currently in progress (battery fade is permanent
    /// degradation, not an incident).
    fn any_incident(&self) -> bool {
        self.wan_down > 0
            || self.site_down.iter().any(|&d| d > 0)
            || self.grid_down.iter().any(|&d| d > 0)
            || self.shock.iter().any(|&d| d > 0)
    }

    /// Applies one timeline transition, counting incident onsets.
    /// Battery fade is applied by the caller (it needs the banks).
    fn apply(&mut self, change: FaultChange, resil: &mut ResilienceReport) {
        resil.fault_events += 1;
        match change {
            FaultChange::SiteDown { site } => {
                if self.site_down[site] == 0 {
                    resil.site_outages += 1;
                }
                self.site_down[site] += 1;
            }
            FaultChange::SiteUp { site } => {
                self.site_down[site] = self.site_down[site].saturating_sub(1);
            }
            FaultChange::GridDown { site, residual } => {
                if self.grid_down[site] == 0 {
                    resil.grid_outages += 1;
                    self.grid_residual[site] = residual;
                } else {
                    // Overlapping grid faults: the harshest cap wins.
                    self.grid_residual[site] = self.grid_residual[site].min(residual);
                }
                self.grid_down[site] += 1;
            }
            FaultChange::GridUp { site } => {
                self.grid_down[site] = self.grid_down[site].saturating_sub(1);
                if self.grid_down[site] == 0 {
                    self.grid_residual[site] = 1.0;
                }
            }
            FaultChange::WanDegraded { factor } => {
                if self.wan_down == 0 {
                    resil.wan_outages += 1;
                    self.wan_factor = factor;
                } else {
                    self.wan_factor = self.wan_factor.min(factor);
                }
                self.wan_down += 1;
            }
            FaultChange::WanRestored => {
                self.wan_down = self.wan_down.saturating_sub(1);
                if self.wan_down == 0 {
                    self.wan_factor = 1.0;
                }
            }
            FaultChange::ShockStart { site, factor } => {
                if self.shock[site] == 0 {
                    resil.forecast_shocks += 1;
                    self.shock_factor[site] = factor;
                } else {
                    self.shock_factor[site] = self.shock_factor[site].min(factor);
                }
                self.shock[site] += 1;
            }
            FaultChange::ShockEnd { site } => {
                self.shock[site] = self.shock[site].saturating_sub(1);
                if self.shock[site] == 0 {
                    self.shock_factor[site] = 1.0;
                }
            }
            FaultChange::BatteryFade { .. } => {}
        }
    }
}

/// An evacuation replay in flight: the VM restarts at `to` once the
/// blocks unique to the failed site have been replayed there.
struct EvacJob {
    vm: Vm,
    from: usize,
    to: usize,
    down_since: f64,
}

/// A VM with nowhere to go: no surviving capacity, or no WAN path to it.
/// Retried every hour; counts as shed load while parked.
struct ParkedVm {
    vm: Vm,
    /// Site holding the VM's unique blocks (its last home).
    data_at: usize,
    down_since: f64,
}

/// Tries to restart `vm` (whose unique blocks sit at `data_at`) on the
/// surviving site with the most headroom. Parks it when no receiver has
/// room or the WAN cannot carry the replay.
#[allow(clippy::too_many_arguments)]
fn try_evacuate(
    vm: Vm,
    data_at: usize,
    down_since: f64,
    now_h: usize,
    caps: &[f64],
    fault: &FaultRuntime,
    dcs: &[Datacenter],
    reserved_mw: &mut [f64],
    evac_jobs: &mut Vec<Option<EvacJob>>,
    parked: &mut Vec<ParkedVm>,
    gdfs: &GdfsMaster,
    wan: &WanModel,
    engine: &mut Engine<NebulaEvent>,
    resil: &mut ResilienceReport,
) {
    let power = vm.power_mw();
    // Receiver: the up site with the most uncommitted headroom (committed
    // = hosted load + evacuations already reserved against it).
    let mut best: Option<(usize, f64)> = None;
    for (i, dc) in dcs.iter().enumerate() {
        if !fault.site_up(i) {
            continue;
        }
        let headroom = caps[i] - dc.load_mw() - reserved_mw[i];
        if headroom + 1e-9 >= power && best.is_none_or(|(_, bh)| headroom > bh) {
            best = Some((i, headroom));
        }
    }
    let Some((to, _)) = best else {
        parked.push(ParkedVm {
            vm,
            data_at,
            down_since,
        });
        return;
    };
    let wan_factor = fault.wan_bw_factor();
    if wan_factor <= 0.0 && to != data_at {
        // Partitioned WAN: the replica replay cannot reach the receiver.
        parked.push(ParkedVm {
            vm,
            data_at,
            down_since,
        });
        return;
    }
    let file = FileId(vm.id.0 as u64);
    let payload_mb = gdfs.unreplicated_mb(file, DatacenterId(data_at as u32));
    // Cold restart from replicas: no memory moves, only the blocks that
    // existed solely at the failed site must be replayed.
    let dur = if to == data_at {
        0.0
    } else {
        wan.degraded(wan_factor)
            .migration_hours(0.0, 0.0, payload_mb)
    };
    if !dur.is_finite() {
        parked.push(ParkedVm {
            vm,
            data_at,
            down_since,
        });
        return;
    }
    reserved_mw[to] += power;
    resil.evacuations += 1;
    resil.evacuated_gb += payload_mb / 1024.0;
    let job = evac_jobs.len();
    evac_jobs.push(Some(EvacJob {
        vm,
        from: data_at,
        to,
        down_since,
    }));
    engine.schedule_at(
        SimTime::from_hours(now_h as u64).plus_hours_f64(dur),
        NebulaEvent::EvacuationDone { job },
    );
}

/// Runs the emulation against a world catalog.
///
/// # Errors
///
/// Returns [`NebulaError::UnknownSite`] when a site name cannot be found
/// in the catalog, [`NebulaError::Config`] for out-of-range parameters,
/// and [`NebulaError::Solve`] when the scheduler's optimization fails
/// even after the graceful-degradation retry ladder.
pub fn run(
    catalog: &WorldCatalog,
    config: &EmulationConfig,
) -> Result<EmulationReport, NebulaError> {
    let cancel = AtomicBool::new(false);
    run_with_cancel(catalog, config, &cancel)
}

/// [`run`] with cooperative cancellation: the flag is polled once per
/// emulated hour and aborts the run with [`NebulaError::Cancelled`]
/// (deadline enforcement, user interrupts).
pub fn run_with_cancel(
    catalog: &WorldCatalog,
    config: &EmulationConfig,
    cancel: &AtomicBool,
) -> Result<EmulationReport, NebulaError> {
    run_observed(catalog, config, cancel, None)
}

/// Per-hour progress observer: called with `(done_hours, total_hours)`.
/// `Sync` because sweep workers may share one sink across threads.
pub type HourObserver<'a> = &'a (dyn Fn(usize, usize) + Sync);

/// [`run_with_cancel`] with an optional per-hour progress observer. The
/// observer fires once before the first scheduling round (`(0, total)`)
/// and once after each emulated hour, ending at `(total, total)`; it sees
/// only loop counters, never solver state, so observation cannot perturb
/// the report.
pub fn run_observed(
    catalog: &WorldCatalog,
    config: &EmulationConfig,
    cancel: &AtomicBool,
    progress: Option<HourObserver<'_>>,
) -> Result<EmulationReport, NebulaError> {
    let n = config.sites.len();
    if n == 0 {
        return Err(NebulaError::Config("no sites".into()));
    }
    if let Some(credit) = config.net_meter_credit {
        if !(0.0..=1.0).contains(&credit) {
            return Err(NebulaError::Config(format!(
                "net-meter credit fraction {credit} outside [0, 1]"
            )));
        }
    }
    if !(config.battery_efficiency > 0.0 && config.battery_efficiency <= 1.0) {
        return Err(NebulaError::Config(format!(
            "battery efficiency {} outside (0, 1]",
            config.battery_efficiency
        )));
    }
    if let Some(fs) = &config.faults {
        fs.validate(n).map_err(NebulaError::Config)?;
    }
    // Resolve sites and synthesize hourly energy profiles.
    let mut profiles = Vec::with_capacity(n);
    let mut dcs: Vec<Datacenter> = Vec::with_capacity(n);
    let mut batteries: Vec<Battery> = Vec::with_capacity(n);
    let mut meters: Vec<NetMeter> = Vec::with_capacity(n);
    let mut elec_prices: Vec<f64> = Vec::with_capacity(n);
    for (i, site) in config.sites.iter().enumerate() {
        let loc = catalog
            .find(&site.location_name)
            .ok_or_else(|| NebulaError::UnknownSite(site.location_name.clone()))?;
        let tmy = catalog.tmy(loc.id);
        profiles.push(EnergyProfile::from_tmy_hourly(
            &tmy,
            &PvModel::default(),
            &Turbine::default(),
            &PueModel::new(),
        ));
        // Hosts sized so any single site can hold the entire fleet.
        dcs.push(Datacenter::new(
            DatacenterId(i as u32),
            loc.name.clone(),
            loc.position,
            site.solar_mw,
            site.wind_mw,
            config.vm_count as usize,
            8,
            (1u64 << 20) as f64,
        ));
        batteries.push(Battery::new(site.battery_kwh, config.battery_efficiency));
        meters.push(NetMeter::new(config.net_meter_credit.unwrap_or(1.0)));
        elec_prices.push(loc.econ.elec_usd_per_kwh);
    }
    let net_metering = config.net_meter_credit.is_some();

    // The fleet: equal-power VMs with the paper's footprint ratios.
    let vm_power_mw = config.total_load_mw / config.vm_count as f64;
    let spec = VmSpec {
        power_w: vm_power_mw * 1e6,
        ..VmSpec::default()
    };
    // All load starts at the site whose local time is deepest into
    // daylight; the paper's run starts hosted in Africa.
    let start_site = (0..n)
        .map(|i| {
            let idx = config.start_hour % profiles[i].len();
            (i, profiles[i].alpha[idx])
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    // Replication cannot exceed the number of datacenters (single-site
    // runs keep one copy instead of panicking in the GDFS master).
    let mut gdfs = GdfsMaster::new(
        (0..n).map(|i| DatacenterId(i as u32)).collect(),
        2usize.min(n),
    );
    let blocks_per_vm = (spec.disk_gb * 1024.0 / BLOCK_MB).ceil() as u32;
    for v in 0..config.vm_count {
        let vm = Vm::new(VmId(v), spec);
        // Structurally infallible: hosts above are sized for the fleet.
        assert!(dcs[start_site].place_vm(vm), "initial placement fits");
        gdfs.create_file(
            FileId(v as u64),
            blocks_per_vm,
            DatacenterId(start_site as u32),
        );
    }

    let mut scheduler = RollingScheduler::new(config.scheduler.clone());
    let predictor = GreenPredictor::new(config.prediction);
    let window = config.scheduler.window_hours;
    let theta = config.scheduler.migration_fraction;

    let mut rows = Vec::with_capacity(config.hours * n);
    let mut total_brown = 0.0;
    let mut total_demand = 0.0;
    let mut migrated_gb = 0.0;
    let mut migration_hour_sum = 0.0;
    let mut migration_log: Vec<MigrationRecord> = Vec::new();
    let mut rereplicated = 0usize;
    let mut battery_in = 0.0;
    let mut battery_out = 0.0;
    let mut net_pushed = 0.0;
    let mut net_drawn = 0.0;
    let mut inflight = 0usize;
    let mut peak_inflight = 0usize;
    let mut brown_site_mwh = vec![0.0f64; n];
    let mut engine: Engine<NebulaEvent> = Engine::new();
    // Donor-side migration overhead per future hour: a migration spanning
    // `ceil(duration)` epochs charges θ·power at the donor in each of them.
    let mut mig_overhead: Vec<Vec<f64>> = vec![vec![0.0; n]; config.hours];

    // Fault machinery. The whole timeline is materialized and scheduled up
    // front; transitions flow through the kernel like any other event.
    let has_faults = config.faults.is_some();
    let schedule = config
        .faults
        .as_ref()
        .map(|fs| FaultSchedule::generate(fs, n, config.hours));
    if let Some(sched) = &schedule {
        for t in &sched.transitions {
            if t.hour < config.hours {
                engine.schedule_at(
                    SimTime::from_hours(t.hour as u64),
                    NebulaEvent::Fault(t.change),
                );
            }
        }
    }
    let mut fault = FaultRuntime::new(n);
    let mut resil = ResilienceReport::default();
    let mut recovery_sum = 0.0f64;
    let mut evac_jobs: Vec<Option<EvacJob>> = Vec::new();
    let mut parked: Vec<ParkedVm> = Vec::new();
    let mut reserved_mw = vec![0.0f64; n];
    let installed_kwh: Vec<f64> = config.sites.iter().map(|s| s.battery_kwh).collect();
    let caps: Vec<f64> = config.sites.iter().map(|s| s.capacity_mw).collect();
    let mut unserved = 0.0f64;
    let mut incident_brown = 0.0f64;
    let mut incident_cost = 0.0f64;

    // One extra iteration (`h == hours`) drains the tail events without
    // running another scheduling round.
    for h in 0..=config.hours {
        // Drain the kernel up to the top of hour `h`: fault transitions at
        // `h` flip state *before* this hour's scheduling round; migration
        // and evacuation completions apply in time-then-FIFO order.
        engine.run_until(SimTime::from_hours(h as u64), |_, t, ev| match ev {
            NebulaEvent::MigrationDone { file, from, to } => {
                gdfs.transfer_unique_blocks(file, from, to);
                inflight -= 1;
            }
            NebulaEvent::Fault(change) => {
                if let FaultChange::BatteryFade { site, factor } = change {
                    batteries[site].derate_to(installed_kwh[site] * factor);
                }
                fault.apply(change, &mut resil);
            }
            NebulaEvent::EvacuationDone { job } => {
                if let Some(j) = evac_jobs[job].take() {
                    reserved_mw[j.to] -= j.vm.power_mw();
                    let file = FileId(j.vm.id.0 as u64);
                    if j.from != j.to {
                        gdfs.transfer_unique_blocks(
                            file,
                            DatacenterId(j.from as u32),
                            DatacenterId(j.to as u32),
                        );
                    }
                    if fault.site_up(j.to) && dcs[j.to].place_vm(j.vm.clone()) {
                        resil.recoveries += 1;
                        recovery_sum += t.as_hours_f64() - j.down_since;
                    } else {
                        // Receiver died (or filled) mid-replay: the blocks
                        // already landed there, so retry from it.
                        parked.push(ParkedVm {
                            vm: j.vm,
                            data_at: j.to,
                            down_since: j.down_since,
                        });
                    }
                }
            }
        });
        if let Some(observe) = progress {
            observe(h, config.hours);
        }
        if h == config.hours {
            break;
        }
        if cancel.load(Ordering::Relaxed) {
            return Err(NebulaError::Cancelled);
        }
        let abs = config.start_hour + h;

        // 0. Graceful degradation: pull every VM off dark sites and retry
        // the parked backlog, then account downtime for this hour.
        if has_faults {
            for s in 0..n {
                if !fault.site_up(s) && dcs[s].vm_count() > 0 {
                    let ids: Vec<VmId> = dcs[s].vms().map(|vm| vm.id).collect();
                    for id in ids {
                        if let Some(vm) = dcs[s].remove_vm(id) {
                            try_evacuate(
                                vm,
                                s,
                                h as f64,
                                h,
                                &caps,
                                &fault,
                                &dcs,
                                &mut reserved_mw,
                                &mut evac_jobs,
                                &mut parked,
                                &gdfs,
                                &config.wan,
                                &mut engine,
                                &mut resil,
                            );
                        }
                    }
                }
            }
            let backlog = std::mem::take(&mut parked);
            for p in backlog {
                try_evacuate(
                    p.vm,
                    p.data_at,
                    p.down_since,
                    h,
                    &caps,
                    &fault,
                    &dcs,
                    &mut reserved_mw,
                    &mut evac_jobs,
                    &mut parked,
                    &gdfs,
                    &config.wan,
                    &mut engine,
                    &mut resil,
                );
            }
            let in_transit = evac_jobs.iter().filter(|j| j.is_some()).count();
            resil.vm_downtime_hours += (in_transit + parked.len()) as f64;
            resil.shed_vm_hours += parked.len() as f64;
            resil.site_down_hours += (0..n).filter(|&i| !fault.site_up(i)).count() as f64;
        }
        let any_up = (0..n).any(|i| fault.site_up(i));
        let wan_factor = fault.wan_bw_factor();

        if any_up {
            // 1. Scheduler round (persistent model, warm-started re-solve).
            // Dark sites enter with zero capacity and zero green forecast;
            // the shifted LP handles the collapse without a rebuild.
            let states: Vec<SiteState> = (0..n)
                .map(|i| {
                    let up = fault.site_up(i);
                    let f = predictor.forecast(&profiles[i], abs, window);
                    SiteState {
                        green_forecast_mw: if up {
                            f.iter().map(|&(a, b)| dcs[i].green_mw(a, b)).collect()
                        } else {
                            vec![0.0; window]
                        },
                        pue_forecast: (0..window)
                            .map(|k| profiles[i].pue[(abs + k) % profiles[i].len()])
                            .collect(),
                        current_load_mw: dcs[i].load_mw(),
                        capacity_mw: if up { config.sites[i].capacity_mw } else { 0.0 },
                    }
                })
                .collect();
            let plan = scheduler.plan(&states)?;

            // 2. Execute migrations (live; epoch-level energy accounting).
            // A fully partitioned WAN pins every VM where it is.
            if wan_factor > 0.0 {
                let wan = config.wan.degraded(wan_factor);
                let moves = plan_migrations(&dcs, &plan.target_mw);
                for m in &moves.moves {
                    let from = m.from.0 as usize;
                    let to = m.to.0 as usize;
                    let Some(vm) = dcs[from].remove_vm(m.vm) else {
                        // The planner only names hosted VMs; tolerate a
                        // stale move rather than killing a year-long run.
                        debug_assert!(false, "planner referenced an unhosted VM");
                        continue;
                    };
                    if !dcs[to].place_vm(vm.clone()) {
                        // Receiver unexpectedly full: keep the VM home.
                        debug_assert!(false, "receiver has room");
                        let kept = dcs[from].place_vm(vm);
                        debug_assert!(kept, "donor takes its VM back");
                        continue;
                    }
                    let file = FileId(m.vm.0 as u64);
                    let payload_mb = gdfs.unreplicated_mb(file, m.from);
                    let dur =
                        wan.migration_hours(vm.spec.mem_mb, vm.spec.dirty_mb_per_hour, payload_mb);
                    migration_hour_sum += dur;
                    migrated_gb += vm.spec.migration_footprint_mb(payload_mb) / 1024.0;
                    // The paper's conservative rule, stretched over the
                    // epochs the transfer actually spans: the moved load
                    // draws power at the donor for (a fraction of) each.
                    let epochs = (dur.ceil() as usize).max(1);
                    for k in 0..epochs {
                        if h + k < config.hours {
                            mig_overhead[h + k][from] += vm.power_mw() * theta;
                        }
                    }
                    // Block data lands at the receiver when the
                    // stop-and-copy completes (a kernel event, possibly
                    // hours away).
                    engine.schedule_at(
                        SimTime::from_hours(h as u64).plus_hours_f64(dur),
                        NebulaEvent::MigrationDone {
                            file,
                            from: m.from,
                            to: m.to,
                        },
                    );
                    inflight += 1;
                    peak_inflight = peak_inflight.max(inflight);
                    migration_log.push(MigrationRecord {
                        hour: h,
                        vm: m.vm,
                        from,
                        to,
                        duration_hours: dur,
                        payload_gb: vm.spec.migration_footprint_mb(payload_mb) / 1024.0,
                    });
                }
            }
        }

        // 3. VMs dirty their files; GDFS re-replicates in the background.
        let dirty_blocks = (spec.dirty_mb_per_hour / BLOCK_MB).ceil() as u32;
        for (i, dc) in dcs.iter().take(n).enumerate() {
            let hosted: Vec<VmId> = dc.vms().map(|vm| vm.id).collect();
            for vmid in hosted {
                for k in 0..dirty_blocks {
                    let block = BlockId {
                        file: FileId(vmid.0 as u64),
                        index: (h as u32 * dirty_blocks + k) % blocks_per_vm,
                    };
                    gdfs.write(block, DatacenterId(i as u32), Bytes::new());
                }
            }
        }
        while gdfs.replicate_step().is_some() {
            rereplicated += 1;
        }

        // 4. Energy accounting: green → battery → net meter → brown.
        // A dark site produces and consumes nothing (its battery idles, its
        // stranded demand goes unserved); a grid fault caps brown supply at
        // its residual factor and strands the rest.
        let incident = has_faults && fault.any_incident();
        for i in 0..n {
            let idx = abs % profiles[i].len();
            let up = fault.site_up(i);
            let raw_green = dcs[i].green_mw(profiles[i].alpha[idx], profiles[i].beta[idx]);
            let green = if up {
                raw_green * fault.green_factor(i)
            } else {
                0.0
            };
            let load = dcs[i].load_mw();
            let pue = profiles[i].pue[idx];
            let overhead = mig_overhead[h][i];
            let demand = (load + overhead) * pue;
            let gridf = if up { fault.grid_factor(i) } else { 0.0 };

            let green_used = green.min(demand);
            let mut surplus = green - green_used;
            // Surplus green charges the battery (lossy), then banks with
            // the utility when net metering is on and the grid is up.
            let charged = if up {
                batteries[i].charge(surplus * 1e3) / 1e3
            } else {
                0.0
            };
            surplus -= charged;
            let pushed = if up && net_metering && gridf > 0.0 && surplus > 0.0 {
                meters[i].push(surplus * 1e3);
                surplus
            } else {
                0.0
            };
            // Deficit drains the battery, then the bank, then the grid.
            let mut residual = demand - green_used;
            let discharged = if up {
                batteries[i].discharge(residual * 1e3) / 1e3
            } else {
                0.0
            };
            residual -= discharged;
            let drawn = if up && net_metering && gridf > 0.0 && residual > 0.0 {
                let d = meters[i].draw(residual * 1e3) / 1e3;
                residual -= d;
                d
            } else {
                0.0
            };
            let want_brown = residual.max(0.0);
            let brown = want_brown * gridf;
            unserved += want_brown - brown;

            battery_in += charged;
            battery_out += discharged;
            net_pushed += pushed;
            net_drawn += drawn;
            brown_site_mwh[i] += brown;
            if incident {
                incident_brown += brown;
                incident_cost += brown * 1e3 * elec_prices[i];
            }
            rows.push(TraceRow {
                hour: h,
                dc: i,
                green_available_mw: green,
                load_mw: load,
                pue_overhead_mw: (load + overhead) * (pue - 1.0),
                migration_mw: overhead,
                battery_charge_mw: charged,
                battery_discharge_mw: discharged,
                net_push_mw: pushed,
                net_draw_mw: drawn,
                battery_soc: batteries[i].state_of_charge(),
                brown_mw: brown,
            });
            total_brown += brown;
            total_demand += demand;
        }
    }

    let migrations = migration_log.len();
    // Annual true-up: each site pays for drawn + brown energy at its local
    // retail price, minus push credits at the configured credit fraction
    // (capped at the payable amount — no cash-out; see `NetMeter`).
    let energy_settlement_usd: f64 = (0..n)
        .map(|i| meters[i].settle_usd(elec_prices[i], brown_site_mwh[i] * 1e3))
        .sum();
    let resilience = if has_faults {
        let vm_hours = config.vm_count as f64 * config.hours as f64;
        resil.slo_attainment = if vm_hours > 0.0 {
            1.0 - resil.vm_downtime_hours / vm_hours
        } else {
            1.0
        };
        resil.mean_recovery_hours = if resil.recoveries > 0 {
            recovery_sum / resil.recoveries as f64
        } else {
            0.0
        };
        resil.unserved_mwh = unserved;
        resil.incident_brown_mwh = incident_brown;
        resil.incident_cost_usd = incident_cost;
        Some(resil)
    } else {
        None
    };
    Ok(EmulationReport {
        rows,
        total_brown_mwh: total_brown,
        total_demand_mwh: total_demand,
        green_fraction: if total_demand > 0.0 {
            1.0 - total_brown / total_demand
        } else {
            1.0
        },
        migrations,
        migrated_gb,
        mean_migration_hours: if migrations > 0 {
            migration_hour_sum / migrations as f64
        } else {
            0.0
        },
        peak_inflight_migrations: peak_inflight,
        migration_log,
        rereplicated_blocks: rereplicated,
        battery_in_mwh: battery_in,
        battery_out_mwh: battery_out,
        net_pushed_mwh: net_pushed,
        net_drawn_mwh: net_drawn,
        energy_settlement_usd,
        scheduler_stats: scheduler.stats(),
        resilience,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, ScheduledFault};

    fn quick_config() -> EmulationConfig {
        EmulationConfig {
            vm_count: 60,
            scheduler: SchedulerConfig {
                window_hours: 12,
                ..SchedulerConfig::default()
            },
            ..EmulationConfig::default()
        }
    }

    #[test]
    fn follow_the_renewables_day() {
        let w = WorldCatalog::anchors_only(4);
        let r = run(&w, &quick_config()).expect("runs");
        assert_eq!(r.rows.len(), 24 * 3);
        assert!(r.resilience.is_none(), "no faults, no resilience body");

        // Load is conserved every hour.
        for h in 0..24 {
            let total: f64 = r
                .rows
                .iter()
                .filter(|row| row.hour == h)
                .map(|row| row.load_mw)
                .sum();
            assert!((total - 50.0).abs() < 1e-6, "hour {h}: {total}");
        }

        // The fleet moves at least twice in a day (the paper's Kenya →
        // Mexico → Guam pattern).
        let hosts: Vec<usize> = (0..24)
            .map(|h| {
                r.rows
                    .iter()
                    .filter(|row| row.hour == h)
                    .max_by(|a, b| a.load_mw.partial_cmp(&b.load_mw).unwrap())
                    .unwrap()
                    .dc
            })
            .collect();
        let handoffs = hosts.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(handoffs >= 2, "hosts by hour: {hosts:?}");
        assert!(r.migrations > 0);

        // Overbuilt Table III plants keep the day almost entirely green.
        assert!(
            r.green_fraction > 0.85,
            "green fraction {}",
            r.green_fraction
        );

        // The hourly re-solves ride the persistent warm-started model.
        assert_eq!(r.scheduler_stats.rounds, 24);
        assert_eq!(r.scheduler_stats.rebuilds, 1);
    }

    #[test]
    fn migration_overhead_appears_in_trace() {
        let w = WorldCatalog::anchors_only(4);
        let r = run(&w, &quick_config()).expect("runs");
        let mig_total: f64 = r.rows.iter().map(|row| row.migration_mw).sum();
        assert!(mig_total > 0.0, "some migration overhead is charged");
        // Overhead is bounded by total load per hour.
        for row in &r.rows {
            assert!(row.migration_mw <= 50.0 + 1e-9);
            assert!(row.brown_mw >= 0.0);
            assert!(row.pue_overhead_mw >= 0.0);
        }
    }

    #[test]
    fn gdfs_ships_only_unreplicated_blocks() {
        let w = WorldCatalog::anchors_only(4);
        let r = run(&w, &quick_config()).expect("runs");
        assert!(r.rereplicated_blocks > 0, "background re-replication ran");
        // Payload per migration stays far below the full 5 GB disk: only
        // memory + recently-dirty blocks move.
        let per_migration_gb = r.migrated_gb / r.migrations as f64;
        assert!(
            per_migration_gb < 2.0,
            "per-migration payload {per_migration_gb} GB"
        );
    }

    #[test]
    fn zero_migration_fraction_removes_overhead() {
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        cfg.scheduler.migration_fraction = 0.0;
        let r = run(&w, &cfg).expect("runs");
        let mig_total: f64 = r.rows.iter().map(|row| row.migration_mw).sum();
        assert_eq!(mig_total, 0.0);
    }

    #[test]
    fn deterministic_report() {
        let w = WorldCatalog::anchors_only(4);
        let a = run(&w, &quick_config()).expect("runs");
        let b = run(&w, &quick_config()).expect("runs");
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn slow_wan_charges_every_spanned_epoch() {
        // A thin 1.2 Mbps VPN stretches migrations past one hour once the
        // payload grows; the donor must pay θ·power for every epoch the
        // transfer spans, not just the first (the old single-epoch bug).
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        cfg.wan = WanModel::leased(1.2);
        let r = run(&w, &cfg).expect("runs");
        assert!(r.migrations > 0);
        assert!(
            r.migration_log.iter().any(|m| m.duration_hours > 1.0),
            "mean {} h — scenario must actually produce multi-epoch moves",
            r.mean_migration_hours
        );
        let theta = cfg.scheduler.migration_fraction;
        let vm_power = cfg.total_load_mw / cfg.vm_count as f64;
        // Expected charge recomputed from the audit log, independent of the
        // accounting path: θ·power·ceil(duration), truncated at the horizon.
        let expected: f64 = r
            .migration_log
            .iter()
            .map(|m| {
                let epochs = (m.duration_hours.ceil() as usize).max(1);
                let charged = epochs.min(cfg.hours - m.hour);
                theta * vm_power * charged as f64
            })
            .sum();
        let traced: f64 = r.rows.iter().map(|row| row.migration_mw).sum();
        assert!(
            (traced - expected).abs() < 1e-9,
            "traced {traced} vs expected {expected}"
        );
        // Strictly more than the single-epoch rule would have charged.
        assert!(traced > theta * vm_power * r.migrations as f64 + 1e-9);
    }

    #[test]
    fn year_scale_run_wraps_the_profile() {
        // A cheap whole-year smoke: 2 VMs, short window, spanning the
        // TMY wrap-around. Mostly exercises indexing and the persistent
        // scheduler at scale.
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        cfg.vm_count = 2;
        cfg.hours = 400;
        cfg.start_hour = 8760 - 100; // crosses the year boundary
        cfg.scheduler.window_hours = 6;
        let r = run(&w, &cfg).expect("runs");
        assert_eq!(r.rows.len(), 400 * 3);
        assert_eq!(r.scheduler_stats.rounds, 400);
        assert_eq!(r.scheduler_stats.rebuilds, 1);
        assert!(
            r.scheduler_stats.warm_rate() > 0.5,
            "{:?}",
            r.scheduler_stats
        );
    }

    #[test]
    fn scheduled_site_outage_evacuates_and_recovers() {
        // Kill the start site at hour 0 for 4 hours: the whole fleet must
        // evacuate over the (fast) WAN, restart on survivors, and the run
        // must keep conserving load afterwards.
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        // Which site hosts at hour 0 is data-dependent; fault all three
        // briefly staggered is overkill — instead find the start site the
        // same way run() does: it is the one holding load in row 0.
        let probe = run(&w, &cfg).expect("probe");
        let start_site = probe
            .rows
            .iter()
            .find(|r| r.hour == 0 && r.load_mw > 1.0)
            .expect("someone hosts at hour 0")
            .dc;
        cfg.faults = Some(FaultSpec {
            scheduled: vec![ScheduledFault {
                kind: FaultKind::SiteOutage,
                site: Some(start_site),
                start_hour: 0,
                duration_hours: 4,
                magnitude: 0.0,
            }],
            ..FaultSpec::default()
        });
        let r = run(&w, &cfg).expect("survives the outage");
        let res = r.resilience.expect("resilience body present");
        assert_eq!(res.site_outages, 1);
        assert_eq!(res.fault_events, 2, "one onset + one clear");
        assert_eq!(res.site_down_hours, 4.0);
        assert_eq!(res.evacuations, 60, "the whole fleet moves");
        assert_eq!(res.recoveries, 60, "and restarts on survivors");
        assert!(res.vm_downtime_hours > 0.0);
        assert!(res.slo_attainment < 1.0);
        assert!(res.slo_attainment > 0.9, "{res:?}");
        // After recovery the dark site hosts nothing until it returns.
        for row in r.rows.iter().filter(|row| row.dc == start_site) {
            if row.hour >= 1 && row.hour < 4 {
                assert!(row.load_mw < 1e-9, "hour {}: {}", row.hour, row.load_mw);
                assert!(row.green_available_mw == 0.0);
            }
        }
        // Load is conserved once the evacuations land.
        for h in 2..24 {
            let total: f64 = r
                .rows
                .iter()
                .filter(|row| row.hour == h)
                .map(|row| row.load_mw)
                .sum();
            assert!((total - 50.0).abs() < 1e-6, "hour {h}: {total}");
        }
    }

    #[test]
    fn wan_partition_parks_evacuees_and_sheds_load() {
        // Site dies while the WAN is fully partitioned: nothing can move,
        // the fleet parks, and every parked hour counts as shed.
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        let probe = run(&w, &cfg).expect("probe");
        let start_site = probe
            .rows
            .iter()
            .find(|r| r.hour == 0 && r.load_mw > 1.0)
            .expect("someone hosts at hour 0")
            .dc;
        cfg.faults = Some(FaultSpec {
            scheduled: vec![
                ScheduledFault {
                    kind: FaultKind::WanDegraded,
                    site: None,
                    start_hour: 0,
                    duration_hours: 6,
                    magnitude: 0.0, // full partition
                },
                ScheduledFault {
                    kind: FaultKind::SiteOutage,
                    site: Some(start_site),
                    start_hour: 2,
                    duration_hours: 10,
                    magnitude: 0.0,
                },
            ],
            ..FaultSpec::default()
        });
        let r = run(&w, &cfg).expect("survives partition + outage");
        let res = r.resilience.expect("resilience body present");
        assert_eq!(res.wan_outages, 1);
        assert_eq!(res.site_outages, 1);
        assert!(res.shed_vm_hours > 0.0, "parked VMs count as shed: {res:?}");
        // Once the WAN heals at hour 6, the backlog drains and recovers.
        assert_eq!(res.recoveries, 60, "{res:?}");
        assert!(res.mean_recovery_hours > 1.0, "{res:?}");
    }

    #[test]
    fn grid_blackout_strands_unserved_energy() {
        // One site, night included, zero grid: whatever brown the site
        // needed becomes unserved energy instead of a panic or free power.
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        cfg.sites.truncate(1);
        cfg.vm_count = 10;
        cfg.faults = Some(FaultSpec {
            scheduled: vec![ScheduledFault {
                kind: FaultKind::GridOutage,
                site: Some(0),
                start_hour: 0,
                duration_hours: 24,
                magnitude: 0.0, // blackout, no residual
            }],
            ..FaultSpec::default()
        });
        let r = run(&w, &cfg).expect("runs dark");
        let res = r.resilience.expect("resilience body present");
        assert_eq!(res.grid_outages, 1);
        assert_eq!(r.total_brown_mwh, 0.0, "blackout means no brown at all");
        assert!(res.unserved_mwh > 0.0, "night demand went unserved");
        assert_eq!(res.incident_brown_mwh, 0.0);
        assert_eq!(res.incident_cost_usd, 0.0);
    }

    #[test]
    fn quiet_fault_spec_matches_fault_free_run() {
        // A fault spec that never fires must not perturb the emulation:
        // identical rows, plus an all-zero resilience body.
        let w = WorldCatalog::anchors_only(4);
        let base = run(&w, &quick_config()).expect("runs");
        let mut cfg = quick_config();
        cfg.faults = Some(FaultSpec::default());
        let r = run(&w, &cfg).expect("runs");
        assert_eq!(base.rows, r.rows);
        assert_eq!(base.migrations, r.migrations);
        let res = r.resilience.expect("resilience body present");
        assert_eq!(res.fault_events, 0);
        assert_eq!(res.slo_attainment, 1.0);
    }

    #[test]
    fn cancellation_aborts_between_hours() {
        let w = WorldCatalog::anchors_only(4);
        let cancel = AtomicBool::new(true);
        let err = run_with_cancel(&w, &quick_config(), &cancel).unwrap_err();
        assert_eq!(err, NebulaError::Cancelled);
    }

    #[test]
    fn battery_fade_derates_the_banks() {
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config().with_batteries(20_000.0);
        cfg.hours = 48;
        let healthy = run(&w, &cfg).expect("runs");
        cfg.faults = Some(FaultSpec {
            scheduled: (0..3)
                .map(|s| ScheduledFault {
                    kind: FaultKind::BatteryFade,
                    site: Some(s),
                    start_hour: 1,
                    duration_hours: 0,
                    magnitude: 0.1, // 90% of capacity gone
                })
                .collect(),
            ..FaultSpec::default()
        });
        let faded = run(&w, &cfg).expect("runs");
        let in_h = |r: &EmulationReport| r.battery_in_mwh;
        assert!(
            in_h(&faded) < in_h(&healthy),
            "faded {} vs healthy {}",
            in_h(&faded),
            in_h(&healthy)
        );
    }
}
