//! The §V-C experiment: a three-datacenter network following the sun.
//!
//! Reproduces the paper's validation setup at simulation scale: the Table
//! III network (Mexico City, Andersen/Guam, Harare — chosen so that local
//! daytime covers the whole UTC day), massively overbuilt solar, no
//! storage. Every hour the scheduler re-partitions load against the 48-hour
//! green forecast and the planner migrates VMs donor→closest-receiver,
//! smallest footprint first. Energy accounting follows the paper: migrated
//! load consumes at both ends during the epoch (scaled by the migration
//! fraction), PUE overhead is charged on top of IT load, and brown power
//! covers any residual demand.
//!
//! GDFS runs underneath: each VM dirties its file hourly; the unreplicated
//! blocks determine each migration's payload, and background re-replication
//! drains between rounds.

use crate::cluster::{Datacenter, DatacenterId};
use crate::gdfs::{BlockId, FileId, GdfsMaster, BLOCK_MB};
use crate::planner::plan_migrations;
use crate::predictor::GreenPredictor;
use crate::scheduler::{Scheduler, SchedulerConfig, SiteState};
use crate::vm::{Vm, VmId, VmSpec};
use crate::wan::WanModel;
use bytes::Bytes;
use greencloud_climate::catalog::WorldCatalog;
use greencloud_energy::profile::EnergyProfile;
use greencloud_energy::pue::PueModel;
use greencloud_energy::pv::PvModel;
use greencloud_energy::windturbine::Turbine;
use greencloud_lp::SolveError;
use greencloud_simkernel::{Engine, SimTime};
use serde::{Deserialize, Serialize};

/// One emulated site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulationSite {
    /// Catalog name substring identifying the location (e.g. "Harare").
    pub location_name: String,
    /// Installed solar, MW.
    pub solar_mw: f64,
    /// Installed wind, MW.
    pub wind_mw: f64,
    /// IT capacity, MW.
    pub capacity_mw: f64,
}

/// Emulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulationConfig {
    /// Total IT load, MW (the paper's 50 MW requirement).
    pub total_load_mw: f64,
    /// Number of VMs carrying the load.
    pub vm_count: u32,
    /// Emulated duration, hours.
    pub hours: usize,
    /// First TMY hour of the run (picks the emulated day).
    pub start_hour: usize,
    /// Sites (Table III by default).
    pub sites: Vec<EmulationSite>,
    /// Scheduler configuration.
    pub scheduler: SchedulerConfig,
    /// WAN link model.
    pub wan: WanModel,
}

impl Default for EmulationConfig {
    /// The paper's Table III network and §V-C workload, scaled to 50 MW.
    fn default() -> Self {
        Self {
            total_load_mw: 50.0,
            vm_count: 200,
            hours: 24,
            start_hour: 24 * 170, // a (northern) summer day
            sites: vec![
                EmulationSite {
                    location_name: "Mexico City".into(),
                    solar_mw: 327.7,
                    wind_mw: 0.009,
                    capacity_mw: 50.0,
                },
                EmulationSite {
                    location_name: "Andersen".into(),
                    solar_mw: 375.4,
                    wind_mw: 38.0,
                    capacity_mw: 50.0,
                },
                EmulationSite {
                    location_name: "Harare".into(),
                    solar_mw: 396.7,
                    wind_mw: 0.0208,
                    capacity_mw: 50.0,
                },
            ],
            scheduler: SchedulerConfig::default(),
            wan: WanModel::leased(10_000.0),
        }
    }
}

/// One datacenter-hour of the Fig. 15 trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Hour since the start of the run.
    pub hour: usize,
    /// Site index (order of `EmulationConfig::sites`).
    pub dc: usize,
    /// Green power available, MW.
    pub green_available_mw: f64,
    /// IT load hosted, MW.
    pub load_mw: f64,
    /// Cooling/power overhead (PUE − 1 share), MW.
    pub pue_overhead_mw: f64,
    /// Migration energy overhead, MW.
    pub migration_mw: f64,
    /// Brown power drawn, MW.
    pub brown_mw: f64,
}

/// Result of an emulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Per datacenter-hour rows (Fig. 15's series).
    pub rows: Vec<TraceRow>,
    /// Total brown energy, MWh.
    pub total_brown_mwh: f64,
    /// Total demand, MWh.
    pub total_demand_mwh: f64,
    /// Fraction of demand served green.
    pub green_fraction: f64,
    /// Number of VM migrations executed.
    pub migrations: usize,
    /// Total migration payload shipped, GB.
    pub migrated_gb: f64,
    /// Mean live-migration duration, hours.
    pub mean_migration_hours: f64,
    /// GDFS blocks re-replicated in the background.
    pub rereplicated_blocks: usize,
}

/// Runs the emulation against a world catalog.
///
/// # Errors
///
/// Returns an error when a site name cannot be found in the catalog or the
/// scheduler's optimization fails.
pub fn run(
    catalog: &WorldCatalog,
    config: &EmulationConfig,
) -> Result<EmulationReport, SolveError> {
    let n = config.sites.len();
    if n == 0 {
        return Err(SolveError::InvalidModel("no sites".into()));
    }
    // Resolve sites and synthesize hourly energy profiles.
    let mut profiles = Vec::with_capacity(n);
    let mut dcs: Vec<Datacenter> = Vec::with_capacity(n);
    for (i, site) in config.sites.iter().enumerate() {
        let loc = catalog.find(&site.location_name).ok_or_else(|| {
            SolveError::InvalidModel(format!("unknown site {}", site.location_name))
        })?;
        let tmy = catalog.tmy(loc.id);
        profiles.push(EnergyProfile::from_tmy_hourly(
            &tmy,
            &PvModel::default(),
            &Turbine::default(),
            &PueModel::new(),
        ));
        // Hosts sized so any single site can hold the entire fleet.
        dcs.push(Datacenter::new(
            DatacenterId(i as u32),
            loc.name.clone(),
            loc.position,
            site.solar_mw,
            site.wind_mw,
            config.vm_count as usize,
            8,
            (1u64 << 20) as f64,
        ));
    }

    // The fleet: equal-power VMs with the paper's footprint ratios.
    let vm_power_mw = config.total_load_mw / config.vm_count as f64;
    let spec = VmSpec {
        power_w: vm_power_mw * 1e6,
        ..VmSpec::default()
    };
    // All load starts at the site whose local time is deepest into
    // daylight; the paper's run starts hosted in Africa.
    let start_site = (0..n)
        .map(|i| {
            let idx = config.start_hour % profiles[i].len();
            (i, profiles[i].alpha[idx])
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut gdfs = GdfsMaster::new((0..n).map(|i| DatacenterId(i as u32)).collect(), 2);
    let blocks_per_vm = (spec.disk_gb * 1024.0 / BLOCK_MB).ceil() as u32;
    for v in 0..config.vm_count {
        let vm = Vm::new(VmId(v), spec);
        assert!(dcs[start_site].place_vm(vm), "initial placement fits");
        gdfs.create_file(
            FileId(v as u64),
            blocks_per_vm,
            DatacenterId(start_site as u32),
        );
    }

    let scheduler = Scheduler::new(config.scheduler.clone());
    let predictor = GreenPredictor::perfect();
    let window = config.scheduler.window_hours;
    let theta = config.scheduler.migration_fraction;

    let mut rows = Vec::with_capacity(config.hours * n);
    let mut total_brown = 0.0;
    let mut total_demand = 0.0;
    let mut migrations = 0usize;
    let mut migrated_gb = 0.0;
    let mut migration_hour_sum = 0.0;
    let mut rereplicated = 0usize;
    let mut engine: Engine<VmId> = Engine::new();

    for h in 0..config.hours {
        let abs = config.start_hour + h;

        // 1. Scheduler round.
        let states: Vec<SiteState> = (0..n)
            .map(|i| {
                let f = predictor.forecast(&profiles[i], abs, window);
                SiteState {
                    green_forecast_mw: f.iter().map(|&(a, b)| dcs[i].green_mw(a, b)).collect(),
                    pue_forecast: (0..window)
                        .map(|k| profiles[i].pue[(abs + k) % profiles[i].len()])
                        .collect(),
                    current_load_mw: dcs[i].load_mw(),
                    capacity_mw: config.sites[i].capacity_mw,
                }
            })
            .collect();
        let plan = scheduler.plan(&states)?;

        // 2. Execute migrations (live; epoch-level energy accounting).
        let moves = plan_migrations(&dcs, &plan.target_mw);
        let mut mig_overhead = vec![0.0f64; n];
        for m in &moves.moves {
            let from = m.from.0 as usize;
            let to = m.to.0 as usize;
            let vm = dcs[from].remove_vm(m.vm).expect("planned VM exists");
            let file = FileId(m.vm.0 as u64);
            let payload_mb = gdfs.unreplicated_mb(file, m.from);
            let dur =
                config
                    .wan
                    .migration_hours(vm.spec.mem_mb, vm.spec.dirty_mb_per_hour, payload_mb);
            migration_hour_sum += dur;
            migrated_gb += vm.spec.migration_footprint_mb(payload_mb) / 1024.0;
            engine.schedule_at(SimTime::from_hours(h as u64).plus_hours_f64(dur), m.vm);
            gdfs.transfer_unique_blocks(file, m.from, m.to);
            // The paper's conservative rule: the moved load draws power at
            // the donor for (a fraction of) the epoch.
            mig_overhead[from] += vm.power_mw() * theta;
            assert!(dcs[to].place_vm(vm), "receiver has room");
            migrations += 1;
        }
        // Drain migration-completion events for this hour (live migrations
        // on leased links land within the epoch).
        engine.run_until(SimTime::from_hours(h as u64 + 1), |_, _, _| {});

        // 3. VMs dirty their files; GDFS re-replicates in the background.
        let dirty_blocks = (spec.dirty_mb_per_hour / BLOCK_MB).ceil() as u32;
        for (i, dc) in dcs.iter().take(n).enumerate() {
            let hosted: Vec<VmId> = dc.vms().map(|vm| vm.id).collect();
            for vmid in hosted {
                for k in 0..dirty_blocks {
                    let block = BlockId {
                        file: FileId(vmid.0 as u64),
                        index: (h as u32 * dirty_blocks + k) % blocks_per_vm,
                    };
                    gdfs.write(block, DatacenterId(i as u32), Bytes::new());
                }
            }
        }
        while gdfs.replicate_step().is_some() {
            rereplicated += 1;
        }

        // 4. Energy accounting.
        for i in 0..n {
            let idx = abs % profiles[i].len();
            let green = dcs[i].green_mw(profiles[i].alpha[idx], profiles[i].beta[idx]);
            let load = dcs[i].load_mw();
            let pue = profiles[i].pue[idx];
            let demand = (load + mig_overhead[i]) * pue;
            let brown = (demand - green).max(0.0);
            rows.push(TraceRow {
                hour: h,
                dc: i,
                green_available_mw: green,
                load_mw: load,
                pue_overhead_mw: (load + mig_overhead[i]) * (pue - 1.0),
                migration_mw: mig_overhead[i],
                brown_mw: brown,
            });
            total_brown += brown;
            total_demand += demand;
        }
    }

    Ok(EmulationReport {
        rows,
        total_brown_mwh: total_brown,
        total_demand_mwh: total_demand,
        green_fraction: if total_demand > 0.0 {
            1.0 - total_brown / total_demand
        } else {
            1.0
        },
        migrations,
        migrated_gb,
        mean_migration_hours: if migrations > 0 {
            migration_hour_sum / migrations as f64
        } else {
            0.0
        },
        rereplicated_blocks: rereplicated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> EmulationConfig {
        EmulationConfig {
            vm_count: 60,
            scheduler: SchedulerConfig {
                window_hours: 12,
                ..SchedulerConfig::default()
            },
            ..EmulationConfig::default()
        }
    }

    #[test]
    fn follow_the_renewables_day() {
        let w = WorldCatalog::anchors_only(4);
        let r = run(&w, &quick_config()).expect("runs");
        assert_eq!(r.rows.len(), 24 * 3);

        // Load is conserved every hour.
        for h in 0..24 {
            let total: f64 = r
                .rows
                .iter()
                .filter(|row| row.hour == h)
                .map(|row| row.load_mw)
                .sum();
            assert!((total - 50.0).abs() < 1e-6, "hour {h}: {total}");
        }

        // The fleet moves at least twice in a day (the paper's Kenya →
        // Mexico → Guam pattern).
        let hosts: Vec<usize> = (0..24)
            .map(|h| {
                r.rows
                    .iter()
                    .filter(|row| row.hour == h)
                    .max_by(|a, b| a.load_mw.partial_cmp(&b.load_mw).unwrap())
                    .unwrap()
                    .dc
            })
            .collect();
        let handoffs = hosts.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(handoffs >= 2, "hosts by hour: {hosts:?}");
        assert!(r.migrations > 0);

        // Overbuilt Table III plants keep the day almost entirely green.
        assert!(
            r.green_fraction > 0.85,
            "green fraction {}",
            r.green_fraction
        );
    }

    #[test]
    fn migration_overhead_appears_in_trace() {
        let w = WorldCatalog::anchors_only(4);
        let r = run(&w, &quick_config()).expect("runs");
        let mig_total: f64 = r.rows.iter().map(|row| row.migration_mw).sum();
        assert!(mig_total > 0.0, "some migration overhead is charged");
        // Overhead is bounded by total load per hour.
        for row in &r.rows {
            assert!(row.migration_mw <= 50.0 + 1e-9);
            assert!(row.brown_mw >= 0.0);
            assert!(row.pue_overhead_mw >= 0.0);
        }
    }

    #[test]
    fn gdfs_ships_only_unreplicated_blocks() {
        let w = WorldCatalog::anchors_only(4);
        let r = run(&w, &quick_config()).expect("runs");
        assert!(r.rereplicated_blocks > 0, "background re-replication ran");
        // Payload per migration stays far below the full 5 GB disk: only
        // memory + recently-dirty blocks move.
        let per_migration_gb = r.migrated_gb / r.migrations as f64;
        assert!(
            per_migration_gb < 2.0,
            "per-migration payload {per_migration_gb} GB"
        );
    }

    #[test]
    fn zero_migration_fraction_removes_overhead() {
        let w = WorldCatalog::anchors_only(4);
        let mut cfg = quick_config();
        cfg.scheduler.migration_fraction = 0.0;
        let r = run(&w, &cfg).expect("runs");
        let mig_total: f64 = r.rows.iter().map(|row| row.migration_mw).sum();
        assert_eq!(mig_total, 0.0);
    }

    #[test]
    fn deterministic_report() {
        let w = WorldCatalog::anchors_only(4);
        let a = run(&w, &quick_config()).expect("runs");
        let b = run(&w, &quick_config()).expect("runs");
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.rows, b.rows);
    }
}
