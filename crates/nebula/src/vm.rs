//! Virtual machines.

use serde::{Deserialize, Serialize};

/// Identifier of a VM within one GreenNebula deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

/// Static description of a VM.
///
/// The default matches the paper's validation workload: 1 vCPU, 512 MB of
/// memory, a 5 GB disk, ~110 MB of new disk data per hour, 30 W.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory footprint, MB.
    pub mem_mb: f64,
    /// Disk size, GB.
    pub disk_gb: f64,
    /// Disk data written per hour, MB (drives GDFS re-replication and
    /// migration payload).
    pub dirty_mb_per_hour: f64,
    /// Average electrical power, W.
    pub power_w: f64,
}

impl Default for VmSpec {
    fn default() -> Self {
        Self {
            vcpus: 1,
            mem_mb: 512.0,
            disk_gb: 5.0,
            dirty_mb_per_hour: 110.0,
            power_w: 30.0,
        }
    }
}

impl VmSpec {
    /// Data volume that must move with the VM in the worst case (memory +
    /// unreplicated dirty blocks), MB.
    pub fn migration_footprint_mb(&self, unreplicated_dirty_mb: f64) -> f64 {
        self.mem_mb + unreplicated_dirty_mb.max(0.0)
    }
}

/// A running VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Identity.
    pub id: VmId,
    /// Static spec.
    pub spec: VmSpec,
}

impl Vm {
    /// Creates a VM with the given id and spec.
    pub fn new(id: VmId, spec: VmSpec) -> Self {
        Self { id, spec }
    }

    /// Power draw in MW (specs carry watts).
    pub fn power_mw(&self) -> f64 {
        self.spec.power_w / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_spec() {
        let s = VmSpec::default();
        assert_eq!(s.mem_mb, 512.0);
        assert_eq!(s.disk_gb, 5.0);
        assert_eq!(s.dirty_mb_per_hour, 110.0);
        assert_eq!(s.power_w, 30.0);
    }

    #[test]
    fn migration_footprint_combines_memory_and_dirty_data() {
        let s = VmSpec::default();
        // The paper's measurement: memory + dirty data ≈ 750 MB in < 1 h.
        let fp = s.migration_footprint_mb(238.0);
        assert_eq!(fp, 750.0);
        assert_eq!(s.migration_footprint_mb(-5.0), 512.0);
    }

    #[test]
    fn power_units() {
        let vm = Vm::new(VmId(1), VmSpec::default());
        assert!((vm.power_mw() - 30e-6).abs() < 1e-15);
    }
}
