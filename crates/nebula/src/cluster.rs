//! Hosts, datacenters, and the per-datacenter manager (the OpenNebula role).

use crate::vm::{Vm, VmId, VmSpec};
use greencloud_climate::geo::LatLon;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a datacenter in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatacenterId(pub u32);

/// A physical machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    /// CPU cores.
    pub cores: u32,
    /// Memory, MB.
    pub mem_mb: f64,
    /// VMs currently placed here.
    vms: Vec<VmId>,
    /// Committed resources.
    used_cores: u32,
    used_mem_mb: f64,
}

impl Host {
    /// Creates an empty host.
    pub fn new(cores: u32, mem_mb: f64) -> Self {
        Self {
            cores,
            mem_mb,
            vms: Vec::new(),
            used_cores: 0,
            used_mem_mb: 0.0,
        }
    }

    /// Whether `spec` fits in the remaining capacity.
    pub fn fits(&self, spec: &VmSpec) -> bool {
        self.used_cores + spec.vcpus <= self.cores && self.used_mem_mb + spec.mem_mb <= self.mem_mb
    }

    fn place(&mut self, vm: &Vm) {
        self.vms.push(vm.id);
        self.used_cores += vm.spec.vcpus;
        self.used_mem_mb += vm.spec.mem_mb;
    }

    fn evict(&mut self, vm: &Vm) -> bool {
        if let Some(k) = self.vms.iter().position(|&id| id == vm.id) {
            self.vms.remove(k);
            self.used_cores -= vm.spec.vcpus;
            self.used_mem_mb -= vm.spec.mem_mb;
            true
        } else {
            false
        }
    }

    /// VMs on this host.
    pub fn vms(&self) -> &[VmId] {
        &self.vms
    }
}

/// A datacenter: hosts plus its on-site plant capacities, managed by a
/// first-fit placer (the within-datacenter OpenNebula role).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Datacenter {
    /// Identity.
    pub id: DatacenterId,
    /// Name (for traces).
    pub name: String,
    /// Position (drives "closest receiver" in the planner).
    pub position: LatLon,
    /// Installed solar capacity, MW.
    pub solar_mw: f64,
    /// Installed wind capacity, MW.
    pub wind_mw: f64,
    hosts: Vec<Host>,
    /// VM registry: id → (vm, host index).
    vms: BTreeMap<VmId, (Vm, usize)>,
}

impl Datacenter {
    /// Creates a datacenter with `n_hosts` identical hosts.
    #[allow(clippy::too_many_arguments)] // constructor mirrors the site spec
    pub fn new(
        id: DatacenterId,
        name: impl Into<String>,
        position: LatLon,
        solar_mw: f64,
        wind_mw: f64,
        n_hosts: usize,
        host_cores: u32,
        host_mem_mb: f64,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            position,
            solar_mw,
            wind_mw,
            hosts: (0..n_hosts)
                .map(|_| Host::new(host_cores, host_mem_mb))
                .collect(),
            vms: BTreeMap::new(),
        }
    }

    /// Places a VM on the first host with room (OpenNebula's default-style
    /// first fit). Returns `false` when no host fits.
    pub fn place_vm(&mut self, vm: Vm) -> bool {
        for (hi, host) in self.hosts.iter_mut().enumerate() {
            if host.fits(&vm.spec) {
                host.place(&vm);
                self.vms.insert(vm.id, (vm, hi));
                return true;
            }
        }
        false
    }

    /// Removes a VM (start of an outbound migration); returns it.
    pub fn remove_vm(&mut self, id: VmId) -> Option<Vm> {
        let (vm, hi) = self.vms.remove(&id)?;
        let evicted = self.hosts[hi].evict(&vm);
        debug_assert!(evicted, "registry and host disagree");
        Some(vm)
    }

    /// The VMs currently hosted, in id order.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.values().map(|(vm, _)| vm)
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Total IT power of hosted VMs, MW.
    pub fn load_mw(&self) -> f64 {
        self.vms.values().map(|(vm, _)| vm.power_mw()).sum()
    }

    /// Green power available at this hour given production fractions.
    pub fn green_mw(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.solar_mw + beta * self.wind_mw
    }

    /// Hosts (read-only).
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc() -> Datacenter {
        Datacenter::new(
            DatacenterId(0),
            "test",
            LatLon::new(0.0, 0.0),
            100.0,
            10.0,
            2,
            4,
            2048.0,
        )
    }

    fn vm(id: u32) -> Vm {
        Vm::new(VmId(id), VmSpec::default())
    }

    #[test]
    fn first_fit_fills_hosts_in_order() {
        let mut d = dc();
        // Host has 4 cores / 2048 MB → fits 4 default VMs (512 MB each).
        for i in 0..8 {
            assert!(d.place_vm(vm(i)), "vm {i}");
        }
        assert!(!d.place_vm(vm(8)), "both hosts full");
        assert_eq!(d.hosts()[0].vms().len(), 4);
        assert_eq!(d.hosts()[1].vms().len(), 4);
        assert_eq!(d.vm_count(), 8);
    }

    #[test]
    fn remove_frees_capacity() {
        let mut d = dc();
        for i in 0..4 {
            d.place_vm(vm(i));
        }
        let got = d.remove_vm(VmId(2)).expect("present");
        assert_eq!(got.id, VmId(2));
        assert!(d.remove_vm(VmId(2)).is_none());
        assert!(d.place_vm(vm(99)), "slot reopened");
    }

    #[test]
    fn load_accounts_vm_power() {
        let mut d = dc();
        for i in 0..5 {
            d.place_vm(vm(i));
        }
        assert!((d.load_mw() - 5.0 * 30e-6).abs() < 1e-12);
    }

    #[test]
    fn green_power_combines_plants() {
        let d = dc();
        assert!((d.green_mw(0.5, 0.2) - (50.0 + 2.0)).abs() < 1e-12);
        assert_eq!(d.green_mw(0.0, 0.0), 0.0);
    }
}
