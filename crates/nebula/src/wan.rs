//! Inter-datacenter WAN links and live-migration timing.
//!
//! The paper measured VPN bandwidth between Barcelona and Piscataway: a VM
//! with memory + dirty disk data totalling over 750 MB migrated in under an
//! hour (≈ 1.7 Mbps effective). A real service would use leased links; the
//! model therefore takes a configurable per-link bandwidth and computes
//! pre-copy live-migration duration: iterative memory copy rounds against
//! the dirty rate, plus the unreplicated disk blocks GDFS must ship.

use serde::{Deserialize, Serialize};

/// A WAN model with uniform bandwidth between every datacenter pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WanModel {
    /// Effective migration bandwidth per link, Mbit/s.
    pub bandwidth_mbps: f64,
    /// Pre-copy stop conditions: maximum copy rounds before stop-and-copy.
    pub max_precopy_rounds: u32,
}

impl Default for WanModel {
    /// The paper's measured VPN link: 750 MB of memory + dirty disk data
    /// migrate in just under an hour (including pre-copy re-sends).
    fn default() -> Self {
        Self {
            bandwidth_mbps: 1.9,
            max_precopy_rounds: 4,
        }
    }
}

impl WanModel {
    /// A leased-line model (`mbps` megabits per second).
    pub fn leased(mbps: f64) -> Self {
        Self {
            bandwidth_mbps: mbps,
            ..Self::default()
        }
    }

    /// Bandwidth in MB/s.
    pub fn mb_per_s(&self) -> f64 {
        self.bandwidth_mbps / 8.0
    }

    /// This link with its bandwidth scaled by `factor` (fault-injection
    /// WAN degradation; `factor ≤ 0` models a partition).
    pub fn degraded(&self, factor: f64) -> Self {
        Self {
            bandwidth_mbps: self.bandwidth_mbps * factor.max(0.0),
            ..*self
        }
    }

    /// Duration of a pre-copy live migration, in hours.
    ///
    /// `mem_mb` is the VM's memory, `dirty_mb_per_hour` its write rate, and
    /// `disk_payload_mb` the unreplicated disk blocks that must move (GDFS
    /// ships only those). Live migration iterates: each round re-sends the
    /// memory dirtied during the previous round; after
    /// `max_precopy_rounds` (or when the dirty set stops shrinking) the VM
    /// briefly stops and the remainder is copied.
    ///
    /// A dead link (bandwidth ≤ 0, e.g. a WAN partition) returns
    /// `f64::INFINITY` — the transfer never completes — rather than
    /// panicking; callers decide whether to park or retry.
    pub fn migration_hours(
        &self,
        mem_mb: f64,
        dirty_mb_per_hour: f64,
        disk_payload_mb: f64,
    ) -> f64 {
        let bw_mb_h = self.mb_per_s() * 3600.0;
        if bw_mb_h <= 0.0 {
            return if mem_mb.max(0.0) + disk_payload_mb.max(0.0) > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        let dirty_per_hour = dirty_mb_per_hour.max(0.0);

        // Disk payload streams first (GDFS background copy).
        let mut total_mb = disk_payload_mb.max(0.0);

        // Pre-copy rounds over memory.
        let mut round_mb = mem_mb.max(0.0);
        for _ in 0..self.max_precopy_rounds {
            total_mb += round_mb;
            let round_h = round_mb / bw_mb_h;
            let next = dirty_per_hour * round_h;
            if next >= round_mb * 0.9 {
                // Dirty rate ≈ bandwidth: pre-copy cannot converge further.
                break;
            }
            round_mb = next;
            if round_mb < 1.0 {
                break;
            }
        }
        // Final stop-and-copy of the residual round.
        total_mb += round_mb.min(mem_mb);
        total_mb / bw_mb_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vpn_moves_750mb_in_under_an_hour() {
        let wan = WanModel::default();
        // 512 MB memory + 238 MB unreplicated disk ≈ the paper's 750 MB.
        let h = wan.migration_hours(512.0, 110.0, 238.0);
        assert!(h < 1.0, "took {h} hours");
        assert!(h > 0.5, "suspiciously fast: {h} hours");
    }

    #[test]
    fn faster_links_migrate_faster() {
        let slow = WanModel::default().migration_hours(512.0, 110.0, 200.0);
        let fast = WanModel::leased(100.0).migration_hours(512.0, 110.0, 200.0);
        assert!(fast < slow / 10.0);
    }

    #[test]
    fn dirty_rate_inflates_duration() {
        let wan = WanModel::leased(10.0);
        let idle = wan.migration_hours(2048.0, 0.0, 0.0);
        let busy = wan.migration_hours(2048.0, 2000.0, 0.0);
        assert!(busy > idle);
    }

    #[test]
    fn zero_memory_zero_payload_is_instant() {
        let wan = WanModel::default();
        assert_eq!(wan.migration_hours(0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn dead_link_is_infinite_not_a_panic() {
        let wan = WanModel::leased(0.0);
        assert_eq!(wan.migration_hours(512.0, 50.0, 100.0), f64::INFINITY);
        assert_eq!(wan.migration_hours(0.0, 0.0, 0.0), 0.0, "nothing to move");
        let partitioned = WanModel::default().degraded(0.0);
        assert_eq!(partitioned.bandwidth_mbps, 0.0);
        assert_eq!(partitioned.migration_hours(512.0, 50.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn degraded_scales_bandwidth() {
        let wan = WanModel::leased(100.0);
        let half = wan.degraded(0.5);
        assert_eq!(half.bandwidth_mbps, 50.0);
        let slow = half.migration_hours(512.0, 50.0, 200.0);
        let fast = wan.migration_hours(512.0, 50.0, 200.0);
        assert!(slow > fast * 1.5);
        assert_eq!(wan.degraded(-1.0).bandwidth_mbps, 0.0, "negative clamps");
    }

    #[test]
    fn duration_scales_roughly_linearly_with_payload() {
        let wan = WanModel::leased(50.0);
        let one = wan.migration_hours(512.0, 50.0, 1000.0);
        let two = wan.migration_hours(512.0, 50.0, 2000.0);
        assert!(two > one * 1.3 && two < one * 2.2);
    }
}
