//! Turning target loads into concrete VM migrations (paper §V-A).
//!
//! "…it orders the datacenters in decreasing amount of load to be migrated
//! out. It then uses a first fit strategy to migrate VMs from each donor to
//! the closest receiver. … the donor datacenters effect the migrations,
//! choosing VMs with smaller memory/disk footprints before larger ones,
//! until the desired amount of power has been migrated out."

use crate::cluster::{Datacenter, DatacenterId};
use crate::vm::VmId;
use serde::{Deserialize, Serialize};

/// One planned VM move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Migration {
    /// Which VM.
    pub vm: VmId,
    /// Donor datacenter.
    pub from: DatacenterId,
    /// Receiver datacenter.
    pub to: DatacenterId,
}

/// The ordered list of migrations for one scheduling round.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Moves in execution order.
    pub moves: Vec<Migration>,
}

impl MigrationPlan {
    /// Number of planned moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// `true` when nothing migrates.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Computes the migration plan that moves each datacenter's hosted power
/// toward `targets_mw` (indexed like `datacenters`).
///
/// VM power is discrete, so donors stop once hosted power is within one
/// VM of the target (never overshooting below it by more than one VM).
///
/// # Panics
///
/// Panics if `targets_mw` and `datacenters` lengths differ.
pub fn plan_migrations(datacenters: &[Datacenter], targets_mw: &[f64]) -> MigrationPlan {
    assert_eq!(
        datacenters.len(),
        targets_mw.len(),
        "targets per datacenter"
    );
    let n = datacenters.len();

    // Excess (to give) and deficit (can take), in MW.
    let mut excess: Vec<f64> = (0..n)
        .map(|i| (datacenters[i].load_mw() - targets_mw[i]).max(0.0))
        .collect();
    let mut deficit: Vec<f64> = (0..n)
        .map(|i| (targets_mw[i] - datacenters[i].load_mw()).max(0.0))
        .collect();

    // Donors in decreasing out-power order.
    let mut donors: Vec<usize> = (0..n).filter(|&i| excess[i] > 1e-12).collect();
    donors.sort_by(|&a, &b| excess[b].total_cmp(&excess[a]));

    let mut moves = Vec::new();
    for &d in &donors {
        // Smallest memory/disk footprint first.
        let mut vms: Vec<(VmId, f64, f64)> = datacenters[d]
            .vms()
            .map(|vm| {
                (
                    vm.id,
                    vm.spec.mem_mb + vm.spec.disk_gb * 1024.0,
                    vm.power_mw(),
                )
            })
            .collect();
        vms.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        // Receivers for this donor: closest first.
        let mut receivers: Vec<usize> = (0..n).filter(|&i| i != d && deficit[i] > 1e-12).collect();
        receivers.sort_by(|&a, &b| {
            let da = datacenters[d]
                .position
                .distance_km(&datacenters[a].position);
            let db = datacenters[d]
                .position
                .distance_km(&datacenters[b].position);
            da.total_cmp(&db)
        });

        let mut to_move = excess[d];
        for (vm, _, power) in vms {
            if to_move < power * 0.5 {
                break; // within one VM of the target
            }
            // First fit among receivers (closest that can still take it).
            if let Some(&r) = receivers.iter().find(|&&r| deficit[r] >= power * 0.5) {
                moves.push(Migration {
                    vm,
                    from: datacenters[d].id,
                    to: datacenters[r].id,
                });
                to_move -= power;
                deficit[r] = (deficit[r] - power).max(0.0);
                receivers.retain(|&x| deficit[x] > 1e-12);
            } else {
                break; // nobody can take more
            }
        }
        excess[d] = to_move;
    }
    MigrationPlan { moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Vm, VmSpec};
    use greencloud_climate::geo::LatLon;

    fn dc(id: u32, lon: f64, vms: u32) -> Datacenter {
        let mut d = Datacenter::new(
            DatacenterId(id),
            format!("dc{id}"),
            LatLon::new(0.0, lon),
            100.0,
            0.0,
            64,
            64,
            (1u64 << 20) as f64,
        );
        for k in 0..vms {
            assert!(d.place_vm(Vm::new(VmId(id * 1000 + k), VmSpec::default())));
        }
        d
    }

    const VMP: f64 = 30e-6; // default VM power in MW

    #[test]
    fn empty_plan_when_targets_match() {
        let dcs = [dc(0, 0.0, 10), dc(1, 30.0, 5)];
        let plan = plan_migrations(&dcs, &[10.0 * VMP, 5.0 * VMP]);
        assert!(plan.is_empty());
    }

    #[test]
    fn moves_flow_from_donor_to_receiver() {
        let dcs = [dc(0, 0.0, 10), dc(1, 30.0, 0)];
        let plan = plan_migrations(&dcs, &[4.0 * VMP, 6.0 * VMP]);
        assert_eq!(plan.len(), 6);
        for m in &plan.moves {
            assert_eq!(m.from, DatacenterId(0));
            assert_eq!(m.to, DatacenterId(1));
        }
    }

    #[test]
    fn closest_receiver_takes_priority() {
        // Donor at lon 0; receivers at lon 10 (close) and lon 120 (far).
        let dcs = [dc(0, 0.0, 8), dc(1, 10.0, 0), dc(2, 120.0, 0)];
        // Close receiver wants 4 VMs, far wants 4.
        let plan = plan_migrations(&dcs, &[0.0, 4.0 * VMP, 4.0 * VMP]);
        assert_eq!(plan.len(), 8);
        // The first four moves go to the closer receiver.
        for m in &plan.moves[..4] {
            assert_eq!(m.to, DatacenterId(1));
        }
        for m in &plan.moves[4..] {
            assert_eq!(m.to, DatacenterId(2));
        }
    }

    #[test]
    fn smallest_footprint_first() {
        let mut d0 = Datacenter::new(
            DatacenterId(0),
            "d0",
            LatLon::new(0.0, 0.0),
            0.0,
            0.0,
            4,
            64,
            (1u64 << 20) as f64,
        );
        let small = VmSpec {
            mem_mb: 256.0,
            disk_gb: 1.0,
            ..VmSpec::default()
        };
        let big = VmSpec {
            mem_mb: 4096.0,
            disk_gb: 50.0,
            ..VmSpec::default()
        };
        d0.place_vm(Vm::new(VmId(1), big));
        d0.place_vm(Vm::new(VmId(2), small));
        let d1 = dc(1, 20.0, 0);
        let plan = plan_migrations(&[d0, d1], &[VMP, VMP]);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.moves[0].vm, VmId(2), "small VM moves first");
    }

    #[test]
    fn conservation_of_vms() {
        let dcs = [dc(0, 0.0, 12), dc(1, 40.0, 3), dc(2, -50.0, 0)];
        let plan = plan_migrations(&dcs, &[5.0 * VMP, 5.0 * VMP, 5.0 * VMP]);
        // All moves reference distinct VMs that exist at their donors.
        let mut seen = std::collections::HashSet::new();
        for m in &plan.moves {
            assert!(seen.insert(m.vm), "vm moved twice");
            assert_ne!(m.from, m.to);
        }
        // Donor 0 sheds ~7 VMs.
        let out0 = plan
            .moves
            .iter()
            .filter(|m| m.from == DatacenterId(0))
            .count();
        assert!((6..=8).contains(&out0), "out0 {out0}");
    }

    #[test]
    fn never_overshoots_below_target_by_more_than_one_vm() {
        let dcs = [dc(0, 0.0, 10), dc(1, 30.0, 0)];
        let plan = plan_migrations(&dcs, &[3.5 * VMP, 6.5 * VMP]);
        let moved = plan.len() as f64;
        // Donor keeps at least 3 VMs' worth (target 3.5, one-VM slack).
        assert!(10.0 - moved >= 3.0, "moved {moved}");
    }
}
