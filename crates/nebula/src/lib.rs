//! GreenNebula: follow-the-renewables VM placement and migration across a
//! network of green datacenters (paper §V).
//!
//! The paper built GreenNebula on OpenNebula with three physical servers
//! emulating three datacenters; this crate reproduces the whole system
//! in-process on a discrete-event kernel:
//!
//! * [`vm`] / [`cluster`] — VMs with the paper's footprints, hosts, and a
//!   per-datacenter manager with first-fit placement (the OpenNebula role).
//! * [`predictor`] — 48-hour green-energy prediction (perfect, as the paper
//!   assumes, or noisy for sensitivity studies).
//! * [`scheduler`] — the hourly re-partitioning optimization: a small
//!   LP/MILP minimizing brown energy over the prediction window, including
//!   the migration energy overhead.
//! * [`planner`] — turns target loads into concrete VM migrations: donors
//!   in decreasing out-power order, first-fit to the closest receiver,
//!   smallest-footprint VMs first (the paper's §V-A policy).
//! * [`wan`] — inter-datacenter links and pre-copy live-migration timing.
//! * [`gdfs`] — the HDFS-like mutation-capable distributed file system:
//!   one master with name bindings, block replicas across datacenters,
//!   write-locally + invalidate-remotely, background re-replication.
//! * [`emulation`] — the §V-C experiment scaled up: an N-datacenter
//!   network following the sun for a day or a year, with per-site
//!   batteries and net metering dispatched green → battery → bank → brown
//!   (Fig. 15 and beyond).
//! * [`sweep`] — parallel scenario sweeps over independent emulation
//!   configs (seasons, storage sizes, forecast noise, WAN bandwidths).
//! * [`faults`] — deterministic fault injection: seeded schedules of site
//!   outages (tier availability model), grid blackouts/brownouts, WAN
//!   degradation, forecast shocks, and battery fade, replayed through the
//!   simulation kernel so the emulation degrades gracefully instead of
//!   assuming the paper's availability figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod emulation;
pub mod error;
pub mod faults;
pub mod gdfs;
pub mod planner;
pub mod predictor;
pub mod scheduler;
pub mod sweep;
pub mod vm;
pub mod wan;

pub use cluster::{Datacenter, DatacenterId, Host};
pub use emulation::{EmulationConfig, EmulationReport, MigrationRecord, TraceRow};
pub use error::NebulaError;
pub use faults::{FaultKind, FaultSchedule, FaultSpec, ResilienceReport, ScheduledFault};
pub use planner::{Migration, MigrationPlan};
pub use scheduler::{RollingScheduler, RollingStats, Scheduler, SchedulerConfig};
pub use sweep::{run_sweep, run_sweep_with_cancel, Scenario, ScenarioResult};
pub use vm::{Vm, VmId, VmSpec};
