//! Green-energy prediction over the scheduler's 48-hour window.
//!
//! The paper's scheduler predicts production 48 hours ahead using the
//! methods of GreenSlot/GreenHadoop and reports that "this production can
//! be predicted with high accuracy"; its validation assumes perfect
//! prediction. We provide both a perfect oracle over the hourly profile
//! and a noisy variant for sensitivity experiments.

use greencloud_energy::profile::EnergyProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Prediction quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictionMode {
    /// Exact future values (the paper's validation setting).
    Perfect,
    /// Multiplicative Gaussian noise with the given relative std-dev,
    /// growing with lead time (hour h gets `σ·(1 + h/24)`).
    Noisy {
        /// Relative standard deviation at lead time zero.
        sigma: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// Predicts per-hour green production fractions (α, β) for a site.
#[derive(Debug, Clone)]
pub struct GreenPredictor {
    mode: PredictionMode,
}

impl GreenPredictor {
    /// Creates a predictor.
    pub fn new(mode: PredictionMode) -> Self {
        Self { mode }
    }

    /// A perfect-oracle predictor.
    pub fn perfect() -> Self {
        Self::new(PredictionMode::Perfect)
    }

    /// Predicted `(alpha, beta)` series for `window` hours starting at
    /// absolute hour `start` (wraps around the profile year).
    pub fn forecast(
        &self,
        profile: &EnergyProfile,
        start: usize,
        window: usize,
    ) -> Vec<(f64, f64)> {
        let n = profile.len();
        assert!(n > 0, "empty profile");
        let mut out = Vec::with_capacity(window);
        match self.mode {
            PredictionMode::Perfect => {
                for h in 0..window {
                    let idx = (start + h) % n;
                    out.push((profile.alpha[idx], profile.beta[idx]));
                }
            }
            PredictionMode::Noisy { sigma, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ start as u64);
                for h in 0..window {
                    let idx = (start + h) % n;
                    let s = sigma * (1.0 + h as f64 / 24.0);
                    let mut f = |v: f64| {
                        if v <= 0.0 {
                            0.0
                        } else {
                            (v * (1.0 + s * gauss(&mut rng))).clamp(0.0, 1.1)
                        }
                    };
                    let a = f(profile.alpha[idx]);
                    let b = f(profile.beta[idx]);
                    out.push((a, b));
                }
            }
        }
        out
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::LocationId;
    use greencloud_energy::pue::PueModel;
    use greencloud_energy::pv::PvModel;
    use greencloud_energy::windturbine::Turbine;

    fn profile() -> EnergyProfile {
        let w = WorldCatalog::anchors_only(8);
        let tmy = w.tmy(LocationId(1)); // Harare
        EnergyProfile::from_tmy_hourly(
            &tmy,
            &PvModel::default(),
            &Turbine::default(),
            &PueModel::new(),
        )
    }

    #[test]
    fn perfect_matches_profile() {
        let p = profile();
        let f = GreenPredictor::perfect().forecast(&p, 100, 48);
        assert_eq!(f.len(), 48);
        for (h, &(alpha, beta)) in f.iter().enumerate() {
            assert_eq!(alpha, p.alpha[100 + h]);
            assert_eq!(beta, p.beta[100 + h]);
        }
    }

    #[test]
    fn forecast_wraps_around_the_year() {
        let p = profile();
        let n = p.len();
        let f = GreenPredictor::perfect().forecast(&p, n - 2, 5);
        assert_eq!(f[0].0, p.alpha[n - 2]);
        assert_eq!(f[2].0, p.alpha[0]);
    }

    #[test]
    fn noise_preserves_night_zeros_and_bounds() {
        let p = profile();
        let f = GreenPredictor::new(PredictionMode::Noisy {
            sigma: 0.3,
            seed: 9,
        })
        .forecast(&p, 48, 48);
        for (h, &(a, b)) in f.iter().enumerate() {
            let idx = 48 + h;
            if p.alpha[idx] == 0.0 {
                assert_eq!(a, 0.0, "night stays dark under noise");
            }
            assert!((0.0..=1.1).contains(&a));
            assert!((0.0..=1.1).contains(&b));
        }
    }

    #[test]
    fn noisy_forecast_is_deterministic_per_seed() {
        let p = profile();
        let m = PredictionMode::Noisy {
            sigma: 0.2,
            seed: 4,
        };
        let a = GreenPredictor::new(m).forecast(&p, 10, 24);
        let b = GreenPredictor::new(m).forecast(&p, 10, 24);
        assert_eq!(a, b);
    }
}
