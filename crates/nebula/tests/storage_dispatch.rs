//! Integration tests for the storage-aware hourly dispatch: per site-hour
//! the emulation must spend energy strictly in the order green → battery →
//! banked net-meter credit → brown, with lossy battery round-trips showing
//! up in the annual brown totals.

use greencloud_climate::catalog::WorldCatalog;
use greencloud_nebula::emulation::{self, EmulationConfig};
use greencloud_nebula::scheduler::SchedulerConfig;

fn storage_config(hours: usize) -> EmulationConfig {
    EmulationConfig {
        vm_count: 40,
        hours,
        scheduler: SchedulerConfig {
            window_hours: 12,
            ..SchedulerConfig::default()
        },
        net_meter_credit: Some(1.0),
        ..EmulationConfig::default()
    }
    // 20 MWh per site: enough to matter overnight, small enough to cycle.
    .with_batteries(20_000.0)
}

#[test]
fn dispatch_priority_is_green_battery_bank_brown() {
    let w = WorldCatalog::anchors_only(4);
    let r = emulation::run(&w, &storage_config(72)).expect("runs");

    let mut charged_total = 0.0;
    let mut discharged_total = 0.0;
    for row in &r.rows {
        let demand = row.load_mw + row.migration_mw + row.pue_overhead_mw;
        let green_used = row.green_available_mw.min(demand);
        let surplus = row.green_available_mw - green_used;
        let deficit = demand - green_used;

        // Energy balance: demand is exactly covered by the four sources.
        let covered = green_used + row.battery_discharge_mw + row.net_draw_mw + row.brown_mw;
        assert!(
            (covered - demand).abs() < 1e-7,
            "hour {} dc {}: covered {covered} vs demand {demand}",
            row.hour,
            row.dc
        );

        // Surplus hours only store/push; deficit hours only drain.
        assert!(row.battery_charge_mw <= surplus + 1e-9);
        assert!(row.net_push_mw <= surplus + 1e-9);
        assert!(row.battery_discharge_mw + row.net_draw_mw <= deficit + 1e-9);
        if row.battery_discharge_mw > 1e-9 || row.net_draw_mw > 1e-9 {
            assert!(deficit > 0.0, "drain without deficit at hour {}", row.hour);
        }
        // The battery sits before the bank: banked credit is only drawn
        // once the battery has been emptied...
        if row.net_draw_mw > 1e-9 {
            assert!(
                row.battery_soc < 1e-9,
                "hour {} dc {}: drew from bank with battery at {}",
                row.hour,
                row.dc,
                row.battery_soc
            );
        }
        // ...and brown is the strict last resort.
        if row.brown_mw > 1e-9 {
            assert!(
                row.battery_soc < 1e-9 && row.net_draw_mw <= 1e-9 || row.net_draw_mw > 0.0,
                "hour {} dc {}: brown while storage remained",
                row.hour,
                row.dc
            );
        }
        // Pushing green to the grid implies the battery had no room left.
        if row.net_push_mw > 1e-9 {
            assert!(
                row.battery_soc > 1.0 - 1e-9,
                "hour {} dc {}: pushed with battery at {}",
                row.hour,
                row.dc,
                row.battery_soc
            );
        }
        assert!((0.0..=1.0).contains(&row.battery_soc));
        charged_total += row.battery_charge_mw;
        discharged_total += row.battery_discharge_mw;
    }
    assert!(charged_total > 0.0, "batteries cycled");
    assert!(discharged_total > 0.0, "batteries discharged");
    // Round-trip losses: what came out is at most efficiency × what went in.
    assert!(
        discharged_total <= charged_total * 0.75 + 1e-9,
        "out {discharged_total} vs in {charged_total}"
    );
    assert_eq!(r.battery_in_mwh, charged_total);
    assert_eq!(r.battery_out_mwh, discharged_total);
}

/// A solar-scarce variant: plants barely cover daytime demand, so battery
/// charging is source-limited (never capacity-limited) and the banks drain
/// to empty overnight — the regime where charge efficiency binds.
fn scarce_config(hours: usize) -> EmulationConfig {
    let mut cfg = storage_config(hours);
    cfg.net_meter_credit = None;
    for s in &mut cfg.sites {
        s.solar_mw /= 4.0;
        s.wind_mw = 0.0;
        s.battery_kwh = 50_000.0;
    }
    cfg
}

#[test]
fn battery_round_trip_losses_appear_in_annual_brown() {
    // Same fleet and migrations, two charge efficiencies: the lossy bank
    // must buy at least as much brown energy, and deliver less.
    let w = WorldCatalog::anchors_only(4);
    let lossy = emulation::run(&w, &scarce_config(96)).expect("lossy");
    let mut perfect_cfg = scarce_config(96);
    perfect_cfg.battery_efficiency = 1.0;
    let perfect = emulation::run(&w, &perfect_cfg).expect("perfect");

    assert!(lossy.battery_in_mwh > 0.0);
    assert!(
        lossy.battery_out_mwh < perfect.battery_out_mwh,
        "lossy delivered {} vs perfect {}",
        lossy.battery_out_mwh,
        perfect.battery_out_mwh
    );
    assert!(
        lossy.total_brown_mwh >= perfect.total_brown_mwh - 1e-9,
        "lossy brown {} vs perfect brown {}",
        lossy.total_brown_mwh,
        perfect.total_brown_mwh
    );
}

#[test]
fn storage_cuts_brown_versus_no_storage() {
    let w = WorldCatalog::anchors_only(4);
    let stored = emulation::run(&w, &storage_config(96)).expect("stored");
    let mut bare_cfg = storage_config(96);
    bare_cfg = EmulationConfig {
        net_meter_credit: None,
        ..bare_cfg
    }
    .with_batteries(0.0);
    let bare = emulation::run(&w, &bare_cfg).expect("bare");
    assert!(
        stored.total_brown_mwh <= bare.total_brown_mwh + 1e-9,
        "storage must not increase brown: {} vs {}",
        stored.total_brown_mwh,
        bare.total_brown_mwh
    );
    assert!(stored.green_fraction >= bare.green_fraction - 1e-12);
}

#[test]
fn multiweek_storage_run_is_deterministic() {
    // Two identical three-week runs with batteries + net metering: every
    // trace row, migration record, and aggregate must match exactly.
    let w = WorldCatalog::anchors_only(4);
    let cfg = storage_config(21 * 24);
    let a = emulation::run(&w, &cfg).expect("first");
    let b = emulation::run(&w, &cfg).expect("second");
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.migration_log, b.migration_log);
    assert_eq!(a.total_brown_mwh, b.total_brown_mwh);
    assert_eq!(a.battery_in_mwh, b.battery_in_mwh);
    assert_eq!(a.net_pushed_mwh, b.net_pushed_mwh);
    assert_eq!(a.rereplicated_blocks, b.rereplicated_blocks);
    assert_eq!(a.scheduler_stats, b.scheduler_stats);
    // Sanity on the run itself: whole-period green fraction stays high on
    // the overbuilt Table III plants, and the scheduler stayed warm.
    assert!(
        a.green_fraction > 0.8,
        "green fraction {}",
        a.green_fraction
    );
    assert_eq!(a.scheduler_stats.rounds, 21 * 24);
    assert_eq!(a.scheduler_stats.rebuilds, 1);
    assert!(a.scheduler_stats.warm_rate() > 0.5);
}

#[test]
fn net_meter_credit_fraction_prices_but_does_not_change_physics() {
    // The credit fraction is a tariff knob: banked energy nets 1:1
    // physically, but push credits shrink with the fraction, so a
    // zero-credit tariff settles strictly more expensive than full credit
    // whenever surplus was pushed.
    let w = WorldCatalog::anchors_only(4);
    let full = emulation::run(&w, &storage_config(72)).expect("full credit");
    let mut cheap_cfg = storage_config(72);
    cheap_cfg.net_meter_credit = Some(0.0);
    let cheap = emulation::run(&w, &cheap_cfg).expect("zero credit");

    assert_eq!(full.rows, cheap.rows, "physics must not depend on credit");
    assert_eq!(full.total_brown_mwh, cheap.total_brown_mwh);
    assert!(full.net_pushed_mwh > 0.0, "scenario pushes surplus");
    assert!(
        cheap.energy_settlement_usd >= full.energy_settlement_usd,
        "zero credit cannot settle cheaper: {} vs {}",
        cheap.energy_settlement_usd,
        full.energy_settlement_usd
    );
    // Settlement is capped at what is payable — never a negative bill.
    assert!(full.energy_settlement_usd >= 0.0);
}
