//! Acceptance tests for fault injection and graceful degradation: a
//! year-long three-site emulation under tier-availability outage injection
//! must complete without panicking, empirically meet the configured
//! availability, and replay byte-identically from the same fault seed.

use greencloud_climate::catalog::WorldCatalog;
use greencloud_nebula::emulation::{self, EmulationConfig};
use greencloud_nebula::faults::{FaultSchedule, FaultSpec};
use greencloud_nebula::scheduler::SchedulerConfig;

const YEAR: usize = 8_760;

fn chaos_config(hours: usize, faults: FaultSpec) -> EmulationConfig {
    EmulationConfig {
        vm_count: 12,
        hours,
        scheduler: SchedulerConfig {
            window_hours: 6,
            ..SchedulerConfig::default()
        },
        faults: Some(faults),
        ..EmulationConfig::default()
    }
}

#[test]
fn year_of_tier_outages_meets_the_availability_target() {
    // Availability 0.99 with a 12-hour MTTR: the stationary down fraction
    // of the per-site repair chain is exactly 1 % of site-hours, and the
    // paper's replication + evacuation machinery should keep served
    // VM-hours well above the raw infrastructure availability.
    let a = 0.99;
    let w = WorldCatalog::anchors_only(4);
    let config = chaos_config(
        YEAR,
        FaultSpec {
            seed: 20_140_700,
            site_availability: Some(a),
            site_mttr_hours: 12.0,
            ..FaultSpec::default()
        },
    );
    let r = emulation::run(&w, &config).expect("a faulty year completes");
    let res = r.resilience.expect("resilience report present");

    // Empirical site downtime matches the tier model. The expected value
    // is 1 - a = 1% of site-hours; ~7 outages/site/year of geometric
    // length leave real variance, so accept a generous band around it.
    let down_fraction = res.site_down_hours / (3.0 * YEAR as f64);
    assert!(
        down_fraction > 0.2 * (1.0 - a) && down_fraction < 3.0 * (1.0 - a),
        "down fraction {down_fraction:.4} vs modeled {:.4}",
        1.0 - a
    );
    assert!(
        res.site_outages >= 5 && res.site_outages <= 80,
        "~22 outages expected across 3 sites, drew {}",
        res.site_outages
    );

    // Graceful degradation: the service recovered from every outage it
    // could, and served VM-hours beat raw single-site availability.
    assert!(res.evacuations > 0, "outages triggered evacuations");
    assert!(
        res.slo_attainment > a,
        "SLO {:.5} should beat single-site availability {a} thanks to \
         evacuation (downtime {:.1} VM-h)",
        res.slo_attainment,
        res.vm_downtime_hours
    );
    assert!(res.slo_attainment <= 1.0);
    assert!(
        res.mean_recovery_hours >= 0.0 && res.mean_recovery_hours < 24.0,
        "recoveries should take hours, not days: {}",
        res.mean_recovery_hours
    );
    // Load conservation despite chaos: demand accounting stays sane.
    assert!(r.total_demand_mwh > 0.0);
    assert!(r.green_fraction > 0.0 && r.green_fraction <= 1.0);
}

#[test]
fn identical_fault_seeds_replay_byte_identically() {
    let w = WorldCatalog::anchors_only(4);
    let config = chaos_config(
        240,
        FaultSpec {
            seed: 99,
            site_availability: Some(0.95),
            site_mttr_hours: 6.0,
            grid_outage_rate_per_khour: 20.0,
            wan_outage_rate_per_khour: 10.0,
            shock_rate_per_khour: 15.0,
            battery_fade_per_khour: 0.01,
            ..FaultSpec::default()
        },
    );
    let first = emulation::run(&w, &config).expect("first run");
    let second = emulation::run(&w, &config).expect("second run");
    assert_eq!(
        first, second,
        "identical fault seeds must yield identical reports"
    );
    let res = first.resilience.as_ref().expect("resilience present");
    assert!(
        res.fault_events > 0,
        "the chaos config actually injected faults"
    );

    // A different seed draws a different schedule (same aggregate rates).
    // A pinned GC_FAULT_SEED deliberately overrides both specs' seeds, so
    // this distinction only exists when the override is absent.
    if std::env::var_os("GC_FAULT_SEED").is_none() {
        let mut other = config.clone();
        if let Some(f) = &mut other.faults {
            f.seed = 100;
        }
        let third = emulation::run(&w, &other).expect("third run");
        assert_ne!(
            first.resilience, third.resilience,
            "a different seed should draw a different fault history"
        );
    }
}

#[test]
fn drawn_schedules_track_the_availability_knob() {
    // Schedule-level statistics over a simulated year, without paying for
    // full emulations: lower availability must mean more down-hours.
    let spec = |a: f64| FaultSpec {
        seed: 7,
        site_availability: Some(a),
        site_mttr_hours: 12.0,
        ..FaultSpec::default()
    };
    let down_fraction = |a: f64| -> f64 {
        let sched = FaultSchedule::generate(&spec(a), 3, YEAR);
        (0..3)
            .map(|s| sched.site_down_fraction(s, YEAR))
            .sum::<f64>()
            / 3.0
    };
    let tier_iv = down_fraction(0.99995);
    let tier_i = down_fraction(0.9967);
    let poor = down_fraction(0.97);
    assert!(
        tier_iv < tier_i && tier_i < poor,
        "downtime must grow as availability drops: {tier_iv} / {tier_i} / {poor}"
    );
    // Stationary expectation: the chain spends 1 - a of its hours down.
    assert!(
        poor > 0.4 * 0.03 && poor < 2.2 * 0.03,
        "poor-tier down fraction {poor:.4} vs modeled 0.03"
    );
}
