//! Local stub of `rand` 0.8 for offline builds.
//!
//! Implements exactly the trait surface the workspace uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool` over half-open ranges of the numeric
//! types that appear in the codebase. Distributions match rand's contracts
//! (uniform in the range, 53-bit uniform floats) but the streams are NOT
//! bit-compatible with crates.io rand — the workspace only relies on
//! determinism for a fixed seed, which this provides.

use std::ops::Range;

/// Core uniform-bit generator.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples a uniform value of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types `Rng::gen_range` can sample over a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: spans
                // are tiny relative to 2^64 so modulo bias is negligible for
                // simulation use, but use widening multiply anyway.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                low.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = low + (high - low) * u;
        // Guard the open upper bound against rounding.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// The user-facing extension trait (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform value of an inferable type (`f64` in `[0,1)`, full-width
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
