//! Local stub of `serde_derive` for offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything (no serde_json or similar backend is present),
//! so the derives expand to nothing. If real serialization is ever needed,
//! replace the `vendor/serde*` stubs with the crates.io releases.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
