//! Local stub of `bytes` for offline builds: a cheaply clonable immutable
//! byte buffer over `Arc<[u8]>` covering the constructors and slice access
//! the workspace uses. No split/advance cursor machinery — the GDFS model
//! only stores, clones, and compares payloads.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (copied; the stub keeps one representation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let b = Bytes::from(String::from("payload"));
        assert_eq!(&b[..], b"payload");
        assert_eq!(b.len(), 7);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"s")[..], b"s");
    }
}
