//! Local stub of `crossbeam` for offline builds.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`;
//! since Rust 1.63 `std::thread::scope` provides the same guarantees, so
//! this adapter just reshapes the API (crossbeam spawn closures receive the
//! scope as an argument, and `scope` returns a `Result`).

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    /// Wrapper handing the std scope around by value (it is `Copy`).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope in which spawned threads must terminate before
    /// `scope` returns. Always `Ok`: std propagates child panics by
    /// unwinding the scope itself, which matches how the workspace uses the
    /// returned `Result` (`.expect(...)` immediately).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                s.spawn(move |_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<i32>());
                });
            }
        })
        .expect("scope");
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
