//! Local stub of `serde` for offline builds.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports. The
//! derive macros expand to nothing (nothing in the workspace serializes), so
//! the traits here are empty markers kept only so `use serde::{...}` and
//! `#[derive(Serialize, Deserialize)]` resolve.

pub use serde_derive::{Deserialize, Serialize};
