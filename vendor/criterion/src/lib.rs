//! Local stub of `criterion` for offline builds.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock sampler. Each benchmark warms up, auto-scales the per-sample
//! iteration count to the measurement budget, then reports min/mean/max of
//! the per-iteration time. No statistics engine, HTML reports, or saved
//! baselines; numbers print to stdout, which is all the repo's before/after
//! comparisons need.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier used by `bench_with_input`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `function_name/parameter` id.
    pub fn new<S: Into<String>, P: Display>(name: S, p: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Sampling configuration + entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing configuration (mirrors criterion's).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_one(
            &name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    budget: Duration,
    f: &mut F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // taking the fastest observed run as the per-iteration estimate.
    let mut per_iter = Duration::MAX;
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
        warm_iters += 1;
        if warm_iters >= 10_000 {
            break;
        }
    }

    // Scale iterations so `sample_size` samples fit the measurement budget.
    let per_sample = budget.as_secs_f64() / sample_size as f64;
    let iters = (per_sample / per_iter.as_secs_f64().max(1e-9)).clamp(1.0, 1e7) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        sample_size,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Re-export matching criterion's (deprecated there, used by older benches).
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
