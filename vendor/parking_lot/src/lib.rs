//! Local stub of `parking_lot` for offline builds.
//!
//! Thin wrappers over `std::sync` primitives exposing the subset of the
//! `parking_lot` API the workspace uses: non-poisoning `lock()`/`read()`/
//! `write()` and `into_inner()`. Poison errors are unwrapped by taking the
//! inner guard — the workspace treats a panicked holder as fatal anyway.

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// `parking_lot::Mutex` stand-in over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock (ignores poisoning, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::RwLock` stand-in over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}
