//! Local stub of `rand_chacha` for offline builds: a genuine ChaCha8 block
//! cipher in counter mode driving the vendored [`rand`] traits. Streams are
//! deterministic per seed but not bit-compatible with crates.io rand_chacha
//! (which the workspace never relies on).

// The block function mirrors the RFC 8439 description, which is index-based.
#![allow(clippy::needless_range_loop)]
use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 64-bit seed via SplitMix64 expansion.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    cursor: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = w[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // "expand 32-byte k" constants + SplitMix64-expanded key.
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0.
        let mut rng = ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let v = self.buffer[self.cursor];
        self.cursor += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | hi << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_ranges_hit_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let k: usize = rng.gen_range(0..5);
            counts[k] += 1;
        }
        for &c in &counts {
            assert!(c > 1500, "skewed bucket: {counts:?}");
        }
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "p=0.3 gave {hits}");
    }
}
