//! Storage-technology study: how the cost of a 100%-green network depends
//! on the storage option (net metering / batteries / none) and the allowed
//! plant technology — the heart of the paper's §IV.
//!
//! ```text
//! cargo run --release --example site_green_network
//! ```

use greencloud::prelude::*;
use greencloud_core::anneal::AnnealOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = WorldCatalog::synthetic(120, 7);
    let tool = PlacementTool::new(
        &world,
        CostParams::default(),
        ToolOptions {
            profile: ProfileConfig::coarse(),
            filter_keep: 10,
            anneal: AnnealOptions {
                iterations: 40,
                seed: 7,
                ..AnnealOptions::default()
            },
            ..ToolOptions::default()
        },
    );

    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>7}",
        "storage", "tech", "cost $M/mo", "capacity MW", "sites"
    );
    for (label, storage) in [
        ("net metering", StorageMode::NetMetering),
        ("batteries", StorageMode::Batteries),
        ("none", StorageMode::None),
    ] {
        for (tlabel, tech) in [
            ("wind", TechMix::WindOnly),
            ("solar", TechMix::SolarOnly),
            ("both", TechMix::Both),
        ] {
            let input = PlacementInput {
                min_green_fraction: 1.0,
                tech,
                storage,
                ..PlacementInput::default()
            };
            match tool.solve(&input) {
                Ok(sol) => println!(
                    "{:>14} {:>12} {:>14.2} {:>14.1} {:>7}",
                    label,
                    tlabel,
                    sol.monthly_cost / 1e6,
                    sol.total_capacity_mw,
                    sol.datacenters.len()
                ),
                Err(e) => println!(
                    "{label:>14} {tlabel:>12} {:>14} {:>14} {:>7}",
                    format!("{e}"),
                    "-",
                    "-"
                ),
            }
        }
    }
    println!("\nExpected shape (paper §IV): storage cuts 100%-green cost by >60%;");
    println!("wind wins with storage, solar wins without; no-storage networks");
    println!("overprovision compute capacity.");
    Ok(())
}
