//! Storage-technology study: how the cost of a 100%-green network depends
//! on the storage option (net metering / batteries / none) and the allowed
//! plant technology — the heart of the paper's §IV. All nine sitings run
//! concurrently through [`Engine::run_all`] on one shared candidate set.
//!
//! ```text
//! cargo run --release --example site_green_network
//! ```

use greencloud::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(WorldCatalog::synthetic(120, 7));
    let search = SearchSpec {
        profile: ProfileConfig::coarse(),
        filter_keep: 10,
        iterations: 40,
        seed: 7,
        ..SearchSpec::default()
    };

    let storages = [
        ("net metering", StorageMode::NetMetering),
        ("batteries", StorageMode::Batteries),
        ("none", StorageMode::None),
    ];
    let techs = [
        ("wind", TechMix::WindOnly),
        ("solar", TechMix::SolarOnly),
        ("both", TechMix::Both),
    ];
    let mut cases = Vec::new();
    for (slabel, storage) in storages {
        for (tlabel, tech) in techs {
            cases.push((
                slabel,
                tlabel,
                ExperimentSpec::Siting(SitingSpec {
                    input: PlacementInput {
                        min_green_fraction: 1.0,
                        tech,
                        storage,
                        ..PlacementInput::default()
                    },
                    search: search.clone(),
                }),
            ));
        }
    }

    let specs: Vec<ExperimentSpec> = cases.iter().map(|(_, _, s)| s.clone()).collect();
    let results = engine.run_all(&specs);

    println!(
        "{:>14} {:>12} {:>14} {:>14} {:>7}",
        "storage", "tech", "cost $M/mo", "capacity MW", "sites"
    );
    for ((slabel, tlabel, _), result) in cases.iter().zip(results) {
        match result {
            Ok(report) => {
                if let ReportBody::Siting(s) = &report.body {
                    println!(
                        "{:>14} {:>12} {:>14.2} {:>14.1} {:>7}",
                        slabel,
                        tlabel,
                        s.monthly_cost_usd / 1e6,
                        s.total_capacity_mw,
                        s.sites.len()
                    );
                }
            }
            Err(e) => println!(
                "{slabel:>14} {tlabel:>12} {:>14} {:>14} {:>7}",
                format!("{e}"),
                "-",
                "-"
            ),
        }
    }
    println!("\nExpected shape (paper §IV): storage cuts 100%-green cost by >60%;");
    println!("wind wins with storage, solar wins without; no-storage networks");
    println!("overprovision compute capacity.");
    Ok(())
}
