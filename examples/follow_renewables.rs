//! GreenNebula day: run the Table III three-datacenter network through 24
//! emulated hours and watch the load follow the sun (the paper's Fig. 15).
//!
//! ```text
//! cargo run --release --example follow_renewables
//! ```

use greencloud::prelude::*;
use greencloud_nebula::emulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The anchor catalog contains the paper's Table III sites.
    let world = WorldCatalog::anchors_only(2014);
    let config = EmulationConfig {
        vm_count: 120,
        ..EmulationConfig::default()
    };
    let report: EmulationReport = emulation::run(&world, &config)?;

    println!("hour | dominant site                 | load MW | green MW | brown MW");
    for hour in 0..config.hours {
        let rows: Vec<_> = report.rows.iter().filter(|r| r.hour == hour).collect();
        let host = rows
            .iter()
            .max_by(|a, b| a.load_mw.partial_cmp(&b.load_mw).unwrap())
            .expect("rows");
        let brown: f64 = rows.iter().map(|r| r.brown_mw).sum();
        println!(
            "{hour:>4} | {:<28} | {:>7.1} | {:>8.1} | {:>8.2}",
            config.sites[host.dc].location_name, host.load_mw, host.green_available_mw, brown
        );
    }
    println!(
        "\nday total: {:.1}% green, {} migrations, {:.1} GB moved (mean {:.2} h each), {} GDFS blocks re-replicated",
        report.green_fraction * 100.0,
        report.migrations,
        report.migrated_gb,
        report.mean_migration_hours,
        report.rereplicated_blocks
    );
    Ok(())
}
