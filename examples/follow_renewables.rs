//! GreenNebula day: run the Table III three-datacenter network through 24
//! emulated hours and watch the load follow the sun (the paper's Fig. 15),
//! through the experiment API.
//!
//! ```text
//! cargo run --release --example follow_renewables
//! ```

use greencloud::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The anchor catalog contains the paper's Table III sites.
    let engine = Engine::new(WorldCatalog::anchors_only(2014));
    let config = EmulationConfig {
        vm_count: 120,
        ..EmulationConfig::default()
    };
    let names: Vec<String> = config
        .sites
        .iter()
        .map(|s| s.location_name.clone())
        .collect();
    let report = engine.run(&ExperimentSpec::Annual(AnnualSpec {
        config,
        include_trace: true,
    }))?;
    let ReportBody::Annual(day) = &report.body else {
        unreachable!("annual spec yields an annual report");
    };

    println!("hour | dominant site                 | load MW | green MW | brown MW");
    for hour in 0..day.hours {
        let rows: Vec<_> = day.trace.iter().filter(|r| r.hour == hour).collect();
        let host = rows
            .iter()
            .max_by(|a, b| a.load_mw.partial_cmp(&b.load_mw).unwrap())
            .expect("rows");
        let brown: f64 = rows.iter().map(|r| r.brown_mw).sum();
        println!(
            "{hour:>4} | {:<28} | {:>7.1} | {:>8.1} | {:>8.2}",
            names[host.dc], host.load_mw, host.green_available_mw, brown
        );
    }
    println!(
        "\nday total: {:.1}% green, {} migrations, {:.1} GB moved (mean {:.2} h each), {} GDFS blocks re-replicated",
        day.green_fraction * 100.0,
        day.migrations,
        day.migrated_gb,
        day.mean_migration_hours,
        day.rereplicated_blocks
    );
    Ok(())
}
