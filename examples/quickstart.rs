//! Quickstart: site a 50 MW, 50%-green HPC cloud and print the solution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greencloud::prelude::*;
use greencloud_core::anneal::AnnealOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic world of candidate locations (deterministic seed).
    //    `WorldCatalog::paper_scale(seed)` gives the full 1373 sites; a
    //    smaller world keeps the example fast.
    let world = WorldCatalog::synthetic(120, 42);

    // 2. The placement tool: Table I costs + representative-day profiles.
    let tool = PlacementTool::new(
        &world,
        CostParams::default(),
        ToolOptions {
            profile: ProfileConfig::coarse(),
            filter_keep: 10,
            anneal: AnnealOptions {
                iterations: 40,
                seed: 42,
                ..AnnealOptions::default()
            },
            ..ToolOptions::default()
        },
    );

    // 3. The provider's ask: 50 MW of compute, at least half the energy
    //    from on-site renewables, five-nines availability.
    let input = PlacementInput::default();

    let solution = tool.solve(&input)?;
    println!("{}", solution.summary());

    // Compare against the cheapest possible brown network (the paper's
    // headline: ~13% premium at 50% green).
    let brown = tool.solve(&input.with_green(0.0, TechMix::BrownOnly))?;
    println!(
        "premium over brown: {:+.1}%",
        (solution.monthly_cost / brown.monthly_cost - 1.0) * 100.0
    );
    Ok(())
}
