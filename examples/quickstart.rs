//! Quickstart: site a 50 MW, 50%-green HPC cloud and print the solution —
//! the 5-line `Engine::new(catalog).run(spec)` path.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greencloud::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An engine over a synthetic world of candidate locations
    //    (deterministic seed). `WorldCatalog::paper_scale(seed)` gives the
    //    full 1373 sites; a smaller world keeps the example fast.
    let engine = Engine::new(WorldCatalog::synthetic(120, 42));

    // 2. The provider's ask as a typed, serializable spec: 50 MW of
    //    compute, at least half the energy from on-site renewables,
    //    five-nines availability, a quick search.
    let search = SearchSpec {
        profile: ProfileConfig::coarse(),
        filter_keep: 10,
        iterations: 40,
        seed: 42,
        ..SearchSpec::default()
    };
    let spec = ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput::default(),
        search: search.clone(),
    });

    // 3. Run it; the report carries the siting, costs, and solver rollups.
    let report = engine.run(&spec)?;
    println!("{}", report.render_text());

    // Specs serialize — `repro run quickstart.spec.json` replays this run:
    println!("spec JSON:\n{}", spec.to_json_string());

    // Compare against the cheapest possible brown network (the paper's
    // headline: ~13% premium at 50% green). The engine reuses the cached
    // candidate set, so the second experiment skips the TMY synthesis.
    let brown = engine.run(&ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput::default().with_green(0.0, TechMix::BrownOnly),
        search,
    }))?;
    if let (ReportBody::Siting(g), ReportBody::Siting(b)) = (&report.body, &brown.body) {
        println!(
            "premium over brown: {:+.1}%",
            (g.monthly_cost_usd / b.monthly_cost_usd - 1.0) * 100.0
        );
    }
    Ok(())
}
