//! # greencloud
//!
//! A production-quality reproduction of **"Building Green Cloud Services at
//! Low Cost"** (Berral, Goiri, Nguyen, Gavaldà, Torres, Bianchini — ICDCS
//! 2014): siting and provisioning a network of datacenters powered partially
//! by on-site solar and wind plants, and operating a follow-the-renewables
//! HPC cloud on top of them.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`api`] — **the front door**: typed, serializable
//!   [`api::ExperimentSpec`]s run by an [`api::Engine`] into structured
//!   [`api::Report`]s (`Engine::new(catalog).run(spec)`).
//! * [`lp`] — LP/MILP solver substrate (simplex, sparse LU, branch & bound).
//! * [`climate`] — synthetic typical-meteorological-year data and the world
//!   location catalog with per-location economics.
//! * [`energy`] — PV, wind-turbine, PUE, battery, and net-metering models.
//! * [`cost`] — the paper's Table I cost model with financing/amortization.
//! * [`core`] — the siting & provisioning framework, optimization problem,
//!   and heuristic solver (paper §II–§IV).
//! * [`simkernel`] — deterministic discrete-event simulation kernel.
//! * [`nebula`] — GreenNebula, the follow-the-renewables VM placement and
//!   migration system (paper §V).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a world, site a
//! 50 MW / 50%-green datacenter network, and print the solution.

#![forbid(unsafe_code)]

pub use greencloud_api as api;
pub use greencloud_climate as climate;
pub use greencloud_core as core;
pub use greencloud_cost as cost;
pub use greencloud_energy as energy;
pub use greencloud_lp as lp;
pub use greencloud_nebula as nebula;
pub use greencloud_simkernel as simkernel;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use greencloud_api::{
        AnnualSpec, ApiError, Engine, ExperimentSpec, Report, ReportBody, SearchSpec, SitingSpec,
        SweepAxes, SweepMode, SweepSpec, TimingSpec,
    };
    pub use greencloud_climate::catalog::{Location, LocationId, WorldCatalog};
    pub use greencloud_climate::profiles::{ProfileConfig, WeatherProfile, WeatherSlot};
    pub use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
    pub use greencloud_core::solution::{PlacementSolution, SitedDatacenter};
    pub use greencloud_core::tool::{PlacementTool, ToolOptions};
    pub use greencloud_cost::params::CostParams;
    pub use greencloud_nebula::emulation::{EmulationConfig, EmulationReport};
    pub use greencloud_nebula::scheduler::{RollingScheduler, RollingStats};
    pub use greencloud_nebula::sweep::{run_sweep, Scenario, ScenarioResult};
}
