//! Cross-crate integration tests: the paper's qualitative findings must
//! hold end-to-end on small worlds.

use greencloud::prelude::*;
use greencloud_core::anneal::AnnealOptions;
use greencloud_nebula::emulation::{self, EmulationConfig};
use greencloud_nebula::scheduler::SchedulerConfig;

fn tool(seed: u64) -> PlacementTool {
    let world = WorldCatalog::synthetic(40, seed);
    PlacementTool::new(
        &world,
        CostParams::default(),
        ToolOptions {
            profile: ProfileConfig::coarse(),
            filter_keep: 6,
            anneal: AnnealOptions {
                iterations: 15,
                chains: 1,
                patience: 12,
                seed,
                ..AnnealOptions::default()
            },
            build_threads: 1,
        },
    )
}

#[test]
fn availability_forces_at_least_two_datacenters() {
    let t = tool(11);
    let sol = t
        .solve(&PlacementInput::default().with_green(0.0, TechMix::BrownOnly))
        .expect("brown network");
    assert!(sol.datacenters.len() >= 2);
    assert!(sol.total_capacity_mw >= 50.0 - 1e-6);
}

#[test]
fn green_requirement_is_met_and_priced() {
    let t = tool(11);
    let brown = t
        .solve(&PlacementInput::default().with_green(0.0, TechMix::BrownOnly))
        .expect("brown");
    let green = t.solve(&PlacementInput::default()).expect("50% green");
    assert!(green.green_fraction >= 0.5 - 1e-6);
    // The paper's qualitative claim: green costs at most modestly more;
    // it must never be drastically cheaper than brown (sanity of costs).
    let ratio = green.monthly_cost / brown.monthly_cost;
    assert!(
        (0.85..1.8).contains(&ratio),
        "green/brown ratio {ratio:.3} (green {:.2}M, brown {:.2}M)",
        green.monthly_cost / 1e6,
        brown.monthly_cost / 1e6
    );
}

#[test]
fn storage_removal_raises_high_green_cost() {
    let t = tool(13);
    let base = PlacementInput {
        min_green_fraction: 0.75,
        tech: TechMix::Both,
        storage: StorageMode::NetMetering,
        ..PlacementInput::default()
    };
    let with_nm = t.solve(&base).expect("net metering");
    let without = t.solve(&PlacementInput {
        storage: StorageMode::None,
        ..base.clone()
    });
    // A small filtered world may simply be unable to reach 75% green with
    // zero storage (Err) — also consistent with the paper.
    if let Ok(sol) = without {
        assert!(
            sol.monthly_cost >= with_nm.monthly_cost * 0.99,
            "no-storage {:.2}M cheaper than net-metered {:.2}M",
            sol.monthly_cost / 1e6,
            with_nm.monthly_cost / 1e6
        );
    }
}

#[test]
fn emulated_day_follows_the_renewables() {
    let world = WorldCatalog::anchors_only(3);
    let cfg = EmulationConfig {
        vm_count: 40,
        scheduler: SchedulerConfig {
            window_hours: 8,
            ..SchedulerConfig::default()
        },
        ..EmulationConfig::default()
    };
    let report = emulation::run(&world, &cfg).expect("emulation");
    // Load conserved, mostly green, and the fleet moves during the day.
    assert!(
        report.green_fraction > 0.8,
        "green {}",
        report.green_fraction
    );
    assert!(report.migrations > 0);
    for hour in 0..cfg.hours {
        let total: f64 = report
            .rows
            .iter()
            .filter(|r| r.hour == hour)
            .map(|r| r.load_mw)
            .sum();
        assert!((total - cfg.total_load_mw).abs() < 1e-6);
    }
}

#[test]
fn migration_fraction_never_reduces_cost_when_zeroed() {
    let t = tool(17);
    let base = PlacementInput {
        min_green_fraction: 0.75,
        tech: TechMix::SolarOnly,
        storage: StorageMode::None,
        migration_fraction: 1.0,
        ..PlacementInput::default()
    };
    let full = t.solve(&base);
    let free = t.solve(&PlacementInput {
        migration_fraction: 0.0,
        ..base
    });
    if let (Ok(full), Ok(free)) = (full, free) {
        assert!(
            free.monthly_cost <= full.monthly_cost * 1.01,
            "θ=0 ({:.2}M) should not cost more than θ=1 ({:.2}M)",
            free.monthly_cost / 1e6,
            full.monthly_cost / 1e6
        );
    }
}
